//! Reverse-mode automatic differentiation on dense matrices.
//!
//! Every gradient-based component of the paper — GNN training (Eq. 12, 16),
//! trigger-generator updates (Eq. 13, 17), and the gradient-matching update of
//! the condensed graph (Eq. 14, 18) — is expressed as a computation recorded
//! on a [`Tape`].  The tape stores the forward values of every intermediate
//! node; [`Tape::backward`] then walks the nodes in reverse and accumulates
//! exact analytical gradients.
//!
//! The design favours clarity over generality: the operation set is exactly
//! what graph condensation and graph backdoor attacks need (sparse-dense
//! products, ReLU/softmax non-linearities, cross-entropy, row normalization,
//! straight-through binarization for discrete trigger structure, per-column
//! cosine matching for gradient matching, and a differentiable SPD solve for
//! kernel ridge regression).

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

/// A handle to a node recorded on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The tape-internal index of this variable.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The operation that produced a node (used by the backward pass).
enum Op {
    /// Input or parameter; gradient is accumulated but not propagated further.
    Leaf,
    MatMul(usize, usize),
    /// Sparse constant (left) times variable (right).
    SpMM(Arc<CsrMatrix>, usize),
    /// Dense constant (left) times variable (right).
    ConstMul(Arc<Matrix>, usize),
    /// Variable times transposed dense constant (`x * c^T`).
    MatMulTransposeConst(usize, Arc<Matrix>),
    Add(usize, usize),
    Sub(usize, usize),
    /// `x + bias` where `bias` is a `1 x d` row broadcast over the rows of `x`.
    AddBias(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Hadamard(usize, usize),
    HadamardConst(usize, Arc<Matrix>),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Transpose(usize),
    RowSelect(usize, Vec<usize>),
    ConcatRows(usize, usize),
    ConcatCols(usize, usize),
    SoftmaxRows(usize),
    RowNormalize(usize),
    Reshape(usize),
    L2NormalizeRows(usize),
    SoftmaxCrossEntropy {
        logits: usize,
        labels: Vec<usize>,
    },
    MeanAll(usize),
    SumAll(usize),
    FrobeniusMse(usize, Arc<Matrix>),
    BinarizeSte(usize),
    CosineMatchToConst(usize, Arc<Matrix>),
    SolveSpd {
        a: usize,
        b: usize,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if `v` participated in the
    /// computation of the loss.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient of `v`, or a zero matrix with the given shape when `v` did not
    /// influence the loss.
    pub fn get_or_zeros(&self, v: Var, rows: usize, cols: usize) -> Matrix {
        self.get(v)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(rows, cols))
    }
}

/// The autodiff tape.  See the module documentation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(
            !value.has_non_finite(),
            "tape produced a non-finite value (op index {})",
            self.nodes.len()
        );
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    fn val(&self, v: usize) -> &Matrix {
        &self.nodes[v].value
    }

    /// Registers an input/parameter matrix on the tape.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Alias of [`Tape::leaf`] for values that are semantically constants.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.leaf(value)
    }

    /// Returns a clone of the forward value of `v`.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes[v.0].value.clone()
    }

    /// Returns a reference to the forward value of `v`.
    pub fn value_ref(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape of the forward value of `v`.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Scalar value of a `1x1` node.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = &self.nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar() called on a non-scalar node");
        m.get(0, 0)
    }

    // ------------------------------------------------------------------
    // Differentiable operations
    // ------------------------------------------------------------------

    /// Dense matrix product of two variables.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).matmul(self.val(b.0));
        self.push(value, Op::MatMul(a.0, b.0))
    }

    /// Sparse constant times variable (`S * x`).  Used for `Â · X` message
    /// passing on the large original graph.
    pub fn spmm(&mut self, sparse: Arc<CsrMatrix>, x: Var) -> Var {
        let value = sparse.spmm(self.val(x.0));
        self.push(value, Op::SpMM(sparse, x.0))
    }

    /// Dense constant times variable (`C * x`).  Used for message passing on
    /// small dense adjacencies (condensed graphs, attached trigger blocks).
    pub fn const_matmul(&mut self, constant: Arc<Matrix>, x: Var) -> Var {
        let value = constant.matmul(self.val(x.0));
        self.push(value, Op::ConstMul(constant, x.0))
    }

    /// Variable times a transposed dense constant (`x * c^T`), computed
    /// without materializing the transpose on the tape. This is the shape
    /// of the SNTK cross-kernel `K(X', Z)` and runs on the blocked
    /// `matmul_transpose` substrate directly.
    pub fn matmul_transpose_const(&mut self, x: Var, constant: Arc<Matrix>) -> Var {
        let value = self.val(x.0).matmul_transpose(&constant);
        self.push(value, Op::MatMulTransposeConst(x.0, constant))
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).add(self.val(b.0));
        self.push(value, Op::Add(a.0, b.0))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).sub(self.val(b.0));
        self.push(value, Op::Sub(a.0, b.0))
    }

    /// Adds a `1 x d` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xv = self.val(x.0);
        let bv = self.val(bias.0);
        assert_eq!(bv.rows(), 1, "add_bias: bias must have exactly one row");
        assert_eq!(
            xv.cols(),
            bv.cols(),
            "add_bias: column mismatch {} vs {}",
            xv.cols(),
            bv.cols()
        );
        let mut value = xv.clone();
        for r in 0..value.rows() {
            for c in 0..value.cols() {
                value.add_at(r, c, bv.get(0, c));
            }
        }
        self.push(value, Op::AddBias(x.0, bias.0))
    }

    /// Multiplies every entry by a constant scalar.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let value = self.val(x.0).scale(s);
        self.push(value, Op::Scale(x.0, s))
    }

    /// Adds a constant scalar to every entry.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let value = self.val(x.0).add_scalar(s);
        self.push(value, Op::AddScalar(x.0))
    }

    /// Element-wise product of two variables.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).hadamard(self.val(b.0));
        self.push(value, Op::Hadamard(a.0, b.0))
    }

    /// Element-wise product with a constant mask (e.g. dropout mask).
    pub fn hadamard_const(&mut self, x: Var, mask: Arc<Matrix>) -> Var {
        let value = self.val(x.0).hadamard(&mask);
        self.push(value, Op::HadamardConst(x.0, mask))
    }

    /// ReLU non-linearity.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.val(x.0).relu();
        self.push(value, Op::Relu(x.0))
    }

    /// Logistic sigmoid non-linearity.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.val(x.0).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(x.0))
    }

    /// Hyperbolic tangent non-linearity.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.val(x.0).map(f32::tanh);
        self.push(value, Op::Tanh(x.0))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let value = self.val(x.0).transpose();
        self.push(value, Op::Transpose(x.0))
    }

    /// Selects (and possibly repeats) rows of `x`.
    pub fn row_select(&mut self, x: Var, indices: &[usize]) -> Var {
        let value = self.val(x.0).select_rows(indices);
        self.push(value, Op::RowSelect(x.0, indices.to_vec()))
    }

    /// Vertically stacks `a` over `b`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).vstack(self.val(b.0));
        self.push(value, Op::ConcatRows(a.0, b.0))
    }

    /// Horizontally concatenates `a` and `b`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a.0).hstack(self.val(b.0));
        self.push(value, Op::ConcatCols(a.0, b.0))
    }

    /// Reshapes a node to `(rows, cols)` preserving row-major element order
    /// (e.g. turning one `1 x (t*d)` trigger row into a `t x d` block).
    pub fn reshape(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let xv = self.val(x.0);
        assert_eq!(
            xv.len(),
            rows * cols,
            "reshape: cannot view {} elements as {}x{}",
            xv.len(),
            rows,
            cols
        );
        let value = Matrix::new(rows, cols, xv.data().to_vec());
        self.push(value, Op::Reshape(x.0))
    }

    /// L2-normalizes every row (rows with tiny norm are passed through
    /// unchanged).  Used to keep generated trigger features on the data's
    /// scale.
    pub fn l2_normalize_rows(&mut self, x: Var) -> Var {
        let value = self.val(x.0).l2_normalize_rows();
        self.push(value, Op::L2NormalizeRows(x.0))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let value = self.val(x.0).softmax_rows();
        self.push(value, Op::SoftmaxRows(x.0))
    }

    /// Divides every row by its sum (plus a small epsilon).  Used to
    /// normalize generated trigger adjacency blocks differentiably.
    pub fn row_normalize(&mut self, x: Var) -> Var {
        let xv = self.val(x.0);
        let mut value = xv.clone();
        for r in 0..value.rows() {
            let sum: f32 = value.row(r).iter().sum::<f32>() + 1e-8;
            for v in value.row_mut(r) {
                *v /= sum;
            }
        }
        self.push(value, Op::RowNormalize(x.0))
    }

    /// Mean softmax cross-entropy between the rows of `logits` and integer
    /// `labels`.  Produces a `1x1` scalar node.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lv = self.val(logits.0);
        assert_eq!(
            lv.rows(),
            labels.len(),
            "softmax_cross_entropy: {} logit rows but {} labels",
            lv.rows(),
            labels.len()
        );
        let probs = lv.softmax_rows();
        let mut loss = 0.0;
        for (r, &label) in labels.iter().enumerate() {
            assert!(
                label < lv.cols(),
                "softmax_cross_entropy: label {} out of range ({} classes)",
                label,
                lv.cols()
            );
            loss -= (probs.get(r, label) + 1e-12).ln();
        }
        let n = labels.len().max(1) as f32;
        let value = Matrix::new(1, 1, vec![loss / n]);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits: logits.0,
                labels: labels.to_vec(),
            },
        )
    }

    /// Mean of all entries (scalar node).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Matrix::new(1, 1, vec![self.val(x.0).mean()]);
        self.push(value, Op::MeanAll(x.0))
    }

    /// Sum of all entries (scalar node).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Matrix::new(1, 1, vec![self.val(x.0).sum()]);
        self.push(value, Op::SumAll(x.0))
    }

    /// Mean squared error against a constant target (scalar node).
    pub fn mse_to_const(&mut self, x: Var, target: Arc<Matrix>) -> Var {
        let xv = self.val(x.0);
        assert_eq!(
            xv.shape(),
            target.shape(),
            "mse_to_const: shape mismatch {:?} vs {:?}",
            xv.shape(),
            target.shape()
        );
        let diff = xv.sub(&target);
        let value = Matrix::new(1, 1, vec![diff.map(|v| v * v).mean()]);
        self.push(value, Op::FrobeniusMse(x.0, target))
    }

    /// Straight-through binarization: forward thresholds at 0.5, backward
    /// passes the gradient unchanged (Hubara et al., used by the trigger
    /// structure head, Eq. 11).
    pub fn binarize_ste(&mut self, x: Var) -> Var {
        let value = self.val(x.0).map(|v| if v >= 0.5 { 1.0 } else { 0.0 });
        self.push(value, Op::BinarizeSte(x.0))
    }

    /// Per-column cosine matching loss `sum_j (1 - cos(x[:,j], target[:,j]))`
    /// against a constant target.  This is the distance `D` used by gradient
    /// matching (Eq. 6), where the target is the (detached) gradient on the
    /// original/poisoned graph.
    pub fn cosine_match_to_const(&mut self, x: Var, target: Arc<Matrix>) -> Var {
        let xv = self.val(x.0);
        assert_eq!(
            xv.shape(),
            target.shape(),
            "cosine_match_to_const: shape mismatch {:?} vs {:?}",
            xv.shape(),
            target.shape()
        );
        let mut loss = 0.0;
        for j in 0..xv.cols() {
            let a = xv.col(j);
            let b = target.col(j);
            loss += 1.0 - Matrix::cosine_similarity(&a, &b);
        }
        let value = Matrix::new(1, 1, vec![loss]);
        self.push(value, Op::CosineMatchToConst(x.0, target))
    }

    /// Differentiable solve of the SPD system `A X = B` (via Cholesky).
    /// Both `A` and `B` may carry gradients; used by the kernel ridge
    /// regression objective of GC-SNTK.
    pub fn solve_spd(&mut self, a: Var, b: Var) -> Var {
        let value = crate::linalg::solve_spd(self.val(a.0), self.val(b.0))
            .expect("solve_spd: matrix is not positive definite");
        self.push(value, Op::SolveSpd { a: a.0, b: b.0 })
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics when `loss` is not a `1x1` node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward must start from a scalar (1x1) node"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for idx in (0..=loss.0).rev() {
            let grad = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            // Re-insert so callers can still read it afterwards.
            grads[idx] = Some(grad.clone());
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul_transpose(self.val(*b));
                    let db = self.val(*a).transpose_matmul(&grad);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::SpMM(sparse, x) => {
                    let dx = sparse.spmm_transpose(&grad);
                    accumulate(&mut grads, *x, dx);
                }
                Op::ConstMul(c, x) => {
                    let dx = c.transpose_matmul(&grad);
                    accumulate(&mut grads, *x, dx);
                }
                Op::MatMulTransposeConst(x, c) => {
                    // y = x c^T  =>  dx = dy * c
                    let dx = grad.matmul(c);
                    accumulate(&mut grads, *x, dx);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad.scale(-1.0));
                }
                Op::AddBias(x, bias) => {
                    accumulate(&mut grads, *x, grad.clone());
                    let col_sums = grad.col_sums();
                    accumulate(&mut grads, *bias, Matrix::row_vector(&col_sums));
                }
                Op::Scale(x, s) => {
                    accumulate(&mut grads, *x, grad.scale(*s));
                }
                Op::AddScalar(x) => {
                    accumulate(&mut grads, *x, grad);
                }
                Op::Hadamard(a, b) => {
                    let da = grad.hadamard(self.val(*b));
                    let db = grad.hadamard(self.val(*a));
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::HadamardConst(x, mask) => {
                    accumulate(&mut grads, *x, grad.hadamard(mask));
                }
                Op::Relu(x) => {
                    let mask = self.val(*x).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, *x, grad.hadamard(&mask));
                }
                Op::Sigmoid(x) => {
                    let y = &self.nodes[idx].value;
                    let dsig = y.map(|v| v * (1.0 - v));
                    accumulate(&mut grads, *x, grad.hadamard(&dsig));
                }
                Op::Tanh(x) => {
                    let y = &self.nodes[idx].value;
                    let dtanh = y.map(|v| 1.0 - v * v);
                    accumulate(&mut grads, *x, grad.hadamard(&dtanh));
                }
                Op::Transpose(x) => {
                    accumulate(&mut grads, *x, grad.transpose());
                }
                Op::RowSelect(x, indices) => {
                    let (rows, cols) = self.val(*x).shape();
                    let mut dx = Matrix::zeros(rows, cols);
                    for (i, &src) in indices.iter().enumerate() {
                        for c in 0..cols {
                            dx.add_at(src, c, grad.get(i, c));
                        }
                    }
                    accumulate(&mut grads, *x, dx);
                }
                Op::ConcatRows(a, b) => {
                    let a_rows = self.val(*a).rows();
                    let cols = grad.cols();
                    let mut da = Matrix::zeros(a_rows, cols);
                    let mut db = Matrix::zeros(grad.rows() - a_rows, cols);
                    for r in 0..grad.rows() {
                        if r < a_rows {
                            da.row_mut(r).copy_from_slice(grad.row(r));
                        } else {
                            db.row_mut(r - a_rows).copy_from_slice(grad.row(r));
                        }
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::ConcatCols(a, b) => {
                    let a_cols = self.val(*a).cols();
                    let rows = grad.rows();
                    let mut da = Matrix::zeros(rows, a_cols);
                    let mut db = Matrix::zeros(rows, grad.cols() - a_cols);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&grad.row(r)[..a_cols]);
                        db.row_mut(r).copy_from_slice(&grad.row(r)[a_cols..]);
                    }
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::SoftmaxRows(x) => {
                    let y = &self.nodes[idx].value;
                    let mut dx = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = grad.row(r);
                        let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                        for c in 0..y.cols() {
                            dx.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    accumulate(&mut grads, *x, dx);
                }
                Op::RowNormalize(x) => {
                    let xv = self.val(*x);
                    let y = &self.nodes[idx].value;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        let sum: f32 = xv.row(r).iter().sum::<f32>() + 1e-8;
                        let gr = grad.row(r);
                        let yr = y.row(r);
                        let dot: f32 = gr.iter().zip(yr.iter()).map(|(&a, &b)| a * b).sum();
                        for (c, &g) in gr.iter().enumerate() {
                            dx.set(r, c, (g - dot) / sum);
                        }
                    }
                    accumulate(&mut grads, *x, dx);
                }
                Op::Reshape(x) => {
                    let (rows, cols) = self.val(*x).shape();
                    let dx = Matrix::new(rows, cols, grad.data().to_vec());
                    accumulate(&mut grads, *x, dx);
                }
                Op::L2NormalizeRows(x) => {
                    let xv = self.val(*x);
                    let y = &self.nodes[idx].value;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        let norm = xv.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt();
                        let gr = grad.row(r);
                        if norm <= 1e-12 {
                            // Pass-through for (near-)zero rows.
                            dx.row_mut(r).copy_from_slice(gr);
                            continue;
                        }
                        let yr = y.row(r);
                        let dot: f32 = gr.iter().zip(yr.iter()).map(|(&a, &b)| a * b).sum();
                        for c in 0..xv.cols() {
                            dx.set(r, c, (gr[c] - dot * yr[c]) / norm);
                        }
                    }
                    accumulate(&mut grads, *x, dx);
                }
                Op::SoftmaxCrossEntropy { logits, labels } => {
                    let lv = self.val(*logits);
                    let probs = lv.softmax_rows();
                    let n = labels.len().max(1) as f32;
                    let scale = grad.get(0, 0) / n;
                    let mut dx = probs;
                    for (r, &label) in labels.iter().enumerate() {
                        dx.add_at(r, label, -1.0);
                    }
                    dx.scale_assign(scale);
                    accumulate(&mut grads, *logits, dx);
                }
                Op::MeanAll(x) => {
                    let (rows, cols) = self.val(*x).shape();
                    let scale = grad.get(0, 0) / (rows * cols).max(1) as f32;
                    accumulate(&mut grads, *x, Matrix::filled(rows, cols, scale));
                }
                Op::SumAll(x) => {
                    let (rows, cols) = self.val(*x).shape();
                    let scale = grad.get(0, 0);
                    accumulate(&mut grads, *x, Matrix::filled(rows, cols, scale));
                }
                Op::FrobeniusMse(x, target) => {
                    let xv = self.val(*x);
                    let scale = 2.0 * grad.get(0, 0) / xv.len().max(1) as f32;
                    let dx = xv.sub(target).scale(scale);
                    accumulate(&mut grads, *x, dx);
                }
                Op::BinarizeSte(x) => {
                    accumulate(&mut grads, *x, grad);
                }
                Op::CosineMatchToConst(x, target) => {
                    let xv = self.val(*x);
                    let scale = grad.get(0, 0);
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for j in 0..xv.cols() {
                        let a = xv.col(j);
                        let b = target.col(j);
                        let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
                        let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
                        if na < 1e-12 || nb < 1e-12 {
                            continue;
                        }
                        let dot: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
                        for (i, (&ai, &bi)) in a.iter().zip(b.iter()).enumerate() {
                            // d(1 - cos)/da_i = -(b_i/(na*nb) - dot*a_i/(na^3*nb))
                            let g = -(bi / (na * nb) - dot * ai / (na * na * na * nb));
                            dx.add_at(i, j, scale * g);
                        }
                    }
                    accumulate(&mut grads, *x, dx);
                }
                Op::SolveSpd { a, b } => {
                    // C = A^{-1} B.  dB = A^{-1} dC, dA = -dB C^T.
                    let av = self.val(*a);
                    let c = &self.nodes[idx].value;
                    let db = crate::linalg::solve_spd(av, &grad)
                        .expect("solve_spd backward: matrix is not positive definite");
                    let da = db.matmul_transpose(c).scale(-1.0);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, delta: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn, rng_from_seed};

    /// Numerically checks the gradient of `f` w.r.t. a leaf built from `x0`.
    fn finite_difference_check(x0: &Matrix, build: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        let grads = tape.backward(loss);
        let analytic = grads
            .get(x)
            .expect("leaf should receive a gradient")
            .clone();

        let eps = 1e-2_f32;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut plus = x0.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = x0.clone();
                minus.set(r, c, minus.get(r, c) - eps);

                let mut tp = Tape::new();
                let vp = tp.leaf(plus);
                let lp = build(&mut tp, vp);
                let mut tm = Tape::new();
                let vm = tm.leaf(minus);
                let lm = build(&mut tm, vm);

                let numeric = (tp.scalar(lp) - tm.scalar(lm)) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                    "gradient mismatch at ({}, {}): numeric {} vs analytic {}",
                    r,
                    c,
                    numeric,
                    a
                );
            }
        }
    }

    #[test]
    fn matmul_gradcheck() {
        let mut rng = rng_from_seed(1);
        let x0 = randn(3, 4, 0.0, 1.0, &mut rng);
        let w = randn(4, 2, 0.0, 1.0, &mut rng);
        finite_difference_check(
            &x0,
            move |tape, x| {
                let wv = tape.leaf(w.clone());
                let y = tape.matmul(x, wv);
                tape.mean_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn relu_sigmoid_tanh_gradcheck() {
        let mut rng = rng_from_seed(2);
        let x0 = randn(3, 3, 0.3, 1.0, &mut rng);
        finite_difference_check(
            &x0,
            |tape, x| {
                let r = tape.relu(x);
                let s = tape.sigmoid(r);
                let t = tape.tanh(s);
                tape.sum_all(t)
            },
            2e-2,
        );
    }

    #[test]
    fn softmax_cross_entropy_gradcheck() {
        let mut rng = rng_from_seed(3);
        let x0 = randn(4, 3, 0.0, 1.0, &mut rng);
        let labels = vec![0usize, 2, 1, 1];
        finite_difference_check(
            &x0,
            move |tape, x| tape.softmax_cross_entropy(x, &labels),
            2e-2,
        );
    }

    #[test]
    fn spmm_gradcheck() {
        let mut rng = rng_from_seed(4);
        let x0 = randn(3, 2, 0.0, 1.0, &mut rng);
        let adj =
            Arc::new(CsrMatrix::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).gcn_normalize());
        finite_difference_check(
            &x0,
            move |tape, x| {
                let y = tape.spmm(adj.clone(), x);
                tape.mean_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn cosine_match_gradcheck() {
        let mut rng = rng_from_seed(5);
        let x0 = randn(4, 3, 0.0, 1.0, &mut rng);
        let target = Arc::new(randn(4, 3, 0.0, 1.0, &mut rng));
        finite_difference_check(
            &x0,
            move |tape, x| tape.cosine_match_to_const(x, target.clone()),
            3e-2,
        );
    }

    #[test]
    fn row_normalize_and_softmax_gradcheck() {
        let mut rng = rng_from_seed(6);
        let x0 = randn(3, 4, 1.5, 0.3, &mut rng);
        finite_difference_check(
            &x0,
            |tape, x| {
                let s = tape.softmax_rows(x);
                let n = tape.row_normalize(s);
                tape.sum_all(n)
            },
            3e-2,
        );
    }

    #[test]
    fn mse_and_bias_gradcheck() {
        let mut rng = rng_from_seed(7);
        let x0 = randn(3, 3, 0.0, 1.0, &mut rng);
        let target = Arc::new(randn(3, 3, 0.0, 1.0, &mut rng));
        let bias = randn(1, 3, 0.0, 1.0, &mut rng);
        finite_difference_check(
            &x0,
            move |tape, x| {
                let b = tape.leaf(bias.clone());
                let y = tape.add_bias(x, b);
                tape.mse_to_const(y, target.clone())
            },
            2e-2,
        );
    }

    #[test]
    fn solve_spd_gradcheck_rhs() {
        let mut rng = rng_from_seed(8);
        // SPD matrix A = M M^T + n I
        let m = randn(3, 3, 0.0, 1.0, &mut rng);
        let a = m
            .matmul(&m.transpose())
            .add(&Matrix::identity(3).scale(3.0));
        let b0 = randn(3, 2, 0.0, 1.0, &mut rng);
        finite_difference_check(
            &b0,
            move |tape, b| {
                let av = tape.leaf(a.clone());
                let c = tape.solve_spd(av, b);
                tape.sum_all(c)
            },
            2e-2,
        );
    }

    #[test]
    fn concat_and_select_gradcheck() {
        let mut rng = rng_from_seed(9);
        let x0 = randn(3, 2, 0.0, 1.0, &mut rng);
        let other = randn(2, 2, 0.0, 1.0, &mut rng);
        finite_difference_check(
            &x0,
            move |tape, x| {
                let o = tape.leaf(other.clone());
                let cat = tape.concat_rows(x, o);
                let sel = tape.row_select(cat, &[0, 4, 2, 0]);
                tape.mean_all(sel)
            },
            1e-2,
        );
    }

    #[test]
    fn reshape_gradcheck() {
        let mut rng = rng_from_seed(10);
        let x0 = randn(2, 6, 0.0, 1.0, &mut rng);
        let w = randn(3, 2, 0.0, 1.0, &mut rng);
        finite_difference_check(
            &x0,
            move |tape, x| {
                let r = tape.reshape(x, 4, 3);
                let wv = tape.leaf(w.clone());
                let y = tape.matmul(r, wv);
                tape.mean_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn l2_normalize_rows_gradcheck() {
        let mut rng = rng_from_seed(11);
        let x0 = randn(3, 4, 0.5, 1.0, &mut rng);
        let target = Arc::new(randn(3, 4, 0.0, 1.0, &mut rng));
        finite_difference_check(
            &x0,
            move |tape, x| {
                let n = tape.l2_normalize_rows(x);
                tape.mse_to_const(n, target.clone())
            },
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_bad_sizes() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 3));
        let _ = tape.reshape(x, 4, 2);
    }

    #[test]
    fn binarize_ste_passes_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::new(1, 3, vec![0.2, 0.7, 0.9]));
        let b = tape.binarize_ste(x);
        assert_eq!(tape.value(b).data(), &[0.0, 1.0, 1.0]);
        let loss = tape.sum_all(b);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::new(1, 1, vec![3.0]));
        // y = x * x  (via hadamard of the same node)
        let y = tape.hadamard(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // d(x^2)/dx = 2x = 6
        assert!((grads.get(x).unwrap().get(0, 0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn unrelated_leaf_has_no_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        let y = tape.leaf(Matrix::ones(2, 2));
        let loss = tape.mean_all(x);
        let grads = tape.backward(loss);
        assert!(grads.get(y).is_none());
        assert!(grads.get(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        let _ = tape.backward(x);
    }
}
