//! Compressed sparse row (CSR) matrices for graph adjacency storage.
//!
//! The original graphs in the paper (up to Reddit with 57M edges) are far too
//! large for dense storage, so the adjacency matrix, its GCN normalization
//! and the sparse-dense product `Â · X` all operate on this CSR type.

use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, grouped per row.
    indices: Vec<usize>,
    /// Non-zero values, aligned with `indices`.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate entries are summed.  Entries with value `0.0` are dropped.
    ///
    /// # Panics
    /// Panics when a triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(
                r < rows && c < cols,
                "CsrMatrix::from_triplets: entry ({}, {}) out of bounds for {}x{}",
                r,
                c,
                rows,
                cols
            );
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds an unweighted adjacency matrix (every edge has weight 1) from an
    /// edge list.  The edges are inserted as given; call
    /// [`CsrMatrix::symmetrize`] for an undirected graph.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let triplets: Vec<(usize, usize, f32)> =
            edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// The identity matrix as CSR.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.indptr[r];
        let end = self.indptr[r + 1];
        self.indices[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Neighbour column indices of row `r`.
    pub fn row_indices(&self, r: usize) -> &[usize] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Out-degree (number of stored entries) of row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Weighted degree (sum of values) of every row.
    pub fn weighted_degrees(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Unweighted degree (entry count) of every row.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Reads a single entry (O(row nnz)).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.row_iter(r)
            .find(|&(col, _)| col == c)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Returns all `(row, col, value)` triplets.
    pub fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.push((r, c, v));
            }
        }
        out
    }

    /// Transpose (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> = self
            .triplets()
            .into_iter()
            .map(|(r, c, v)| (c, r, v))
            .collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Returns `max(self, self^T)` entry-wise, making an adjacency symmetric.
    pub fn symmetrize(&self) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        let mut triplets = Vec::with_capacity(self.nnz() * 2);
        for (r, c, v) in self.triplets() {
            triplets.push((r, c, v));
            if r != c {
                triplets.push((c, r, v));
            }
        }
        // Duplicate (r,c) pairs sum in from_triplets; clamp weights back to the
        // max to keep an unweighted adjacency unweighted.
        let summed = CsrMatrix::from_triplets(self.rows, self.cols, &triplets);
        let capped: Vec<(usize, usize, f32)> = summed
            .triplets()
            .into_iter()
            .map(|(r, c, v)| (r, c, v.min(self.get(r, c).max(self.get(c, r)))))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &capped)
    }

    /// Adds the identity to a square matrix (self-loops).
    pub fn add_self_loops(&self) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "add_self_loops requires square");
        let mut triplets = self.triplets();
        for i in 0..self.rows {
            if self.get(i, i) == 0.0 {
                triplets.push((i, i, 1.0));
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Symmetric GCN normalization `D^{-1/2} (A + I) D^{-1/2}`.
    pub fn gcn_normalize(&self) -> CsrMatrix {
        let with_loops = self.add_self_loops();
        let deg = with_loops.weighted_degrees();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let triplets: Vec<(usize, usize, f32)> = with_loops
            .triplets()
            .into_iter()
            .map(|(r, c, v)| (r, c, v * inv_sqrt[r] * inv_sqrt[c]))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Row-stochastic normalization `D^{-1} A` (no self-loops added).
    pub fn row_normalize(&self) -> CsrMatrix {
        let deg = self.weighted_degrees();
        let triplets: Vec<(usize, usize, f32)> = self
            .triplets()
            .into_iter()
            .map(|(r, c, v)| {
                let d = deg[r];
                (r, c, if d > 0.0 { v / d } else { 0.0 })
            })
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Sparse-dense product `self * dense`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: inner dimensions differ ({}x{} * {}x{})",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let cols = dense.cols();
        let mut out = Matrix::zeros(self.rows, cols);
        if self.rows * cols > 1 << 16 {
            use rayon::prelude::*;
            out.data_mut()
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(r, out_row)| {
                    for (c, v) in self.row_iter(r) {
                        let src = dense.row(c);
                        for (o, &s) in out_row.iter_mut().zip(src.iter()) {
                            *o += v * s;
                        }
                    }
                });
        } else {
            for r in 0..self.rows {
                for (c, v) in self.row_iter(r) {
                    let src_ptr = dense.row(c).to_vec();
                    let out_row = out.row_mut(r);
                    for (o, &s) in out_row.iter_mut().zip(src_ptr.iter()) {
                        *o += v * s;
                    }
                }
            }
        }
        out
    }

    /// Sparse-transpose times dense: `self^T * dense`.
    pub fn spmm_transpose(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm_transpose: row mismatch {} vs {}",
            self.rows,
            dense.rows()
        );
        let cols = dense.cols();
        let mut out = Matrix::zeros(self.cols, cols);
        for r in 0..self.rows {
            let src = dense.row(r).to_vec();
            for (c, v) in self.row_iter(r) {
                let out_row = out.row_mut(c);
                for (o, &s) in out_row.iter_mut().zip(src.iter()) {
                    *o += v * s;
                }
            }
        }
        out
    }

    /// Densifies the matrix (only sensible for small matrices such as
    /// condensed graphs).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Builds a CSR matrix from a dense matrix, dropping entries below `tol`.
    pub fn from_dense(dense: &Matrix, tol: f32) -> CsrMatrix {
        let mut triplets = Vec::new();
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v.abs() > tol {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
    }

    /// Extracts the induced submatrix on the given (row = col) index set.
    /// Index `i` of the result corresponds to `nodes[i]` of the original.
    pub fn induced_submatrix(&self, nodes: &[usize]) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "induced_submatrix requires square");
        let mut position = vec![usize::MAX; self.rows];
        for (new, &old) in nodes.iter().enumerate() {
            position[old] = new;
        }
        let mut triplets = Vec::new();
        for (new_r, &old_r) in nodes.iter().enumerate() {
            for (c, v) in self.row_iter(old_r) {
                let new_c = position[c];
                if new_c != usize::MAX {
                    triplets.push((new_r, new_c, v));
                }
            }
        }
        CsrMatrix::from_triplets(nodes.len(), nodes.len(), &triplets)
    }

    /// Returns a copy with the listed (undirected) edges removed.
    pub fn remove_edges(&self, edges: &[(usize, usize)]) -> CsrMatrix {
        use std::collections::HashSet;
        let forbidden: HashSet<(usize, usize)> = edges
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let triplets: Vec<(usize, usize, f32)> = self
            .triplets()
            .into_iter()
            .filter(|&(r, c, _)| !forbidden.contains(&(r, c)))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // 0 - 1, 1 - 2 (undirected)
        CsrMatrix::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn builds_from_triplets_and_dedups() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 0.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn degrees_and_row_iter() {
        let m = small();
        assert_eq!(m.degrees(), vec![1, 2, 1]);
        let row1: Vec<(usize, f32)> = m.row_iter(1).collect();
        assert_eq!(row1, vec![(0, 1.0), (2, 1.0)]);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = small();
        let x = Matrix::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sparse_result = m.spmm(&x);
        let dense_result = m.to_dense().matmul(&x);
        assert!(sparse_result.approx_eq(&dense_result, 1e-6));
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let x = Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let a = m.spmm_transpose(&x);
        let b = m.to_dense().transpose().matmul(&x);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn gcn_normalization_rows_bounded() {
        let m = small();
        let norm = m.gcn_normalize();
        // Every entry of the normalized adjacency is in (0, 1].
        for (_, _, v) in norm.triplets() {
            assert!(v > 0.0 && v <= 1.0);
        }
        // Self-loops present.
        for i in 0..3 {
            assert!(norm.get(i, i) > 0.0);
        }
    }

    #[test]
    fn row_normalize_rows_sum_to_one() {
        let m = small();
        let norm = m.row_normalize();
        for r in 0..3 {
            let s: f32 = norm.row_iter(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let m = CsrMatrix::from_edges(3, &[(0, 1), (2, 1)]);
        let s = m.symmetrize();
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 2), 1.0);
    }

    #[test]
    fn induced_submatrix_relabels() {
        let m = small();
        let sub = m.induced_submatrix(&[1, 2]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.get(0, 1), 1.0); // old (1,2)
        assert_eq!(sub.get(1, 0), 1.0);
        assert_eq!(sub.get(0, 0), 0.0);
    }

    #[test]
    fn remove_edges_removes_both_directions() {
        let m = small();
        let pruned = m.remove_edges(&[(0, 1)]);
        assert_eq!(pruned.get(0, 1), 0.0);
        assert_eq!(pruned.get(1, 0), 0.0);
        assert_eq!(pruned.get(1, 2), 1.0);
    }

    #[test]
    fn dense_round_trip() {
        let m = small();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(back, m);
    }
}
