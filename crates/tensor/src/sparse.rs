//! Compressed sparse row (CSR) matrices for graph adjacency storage.
//!
//! The original graphs in the paper (up to Reddit with 57M edges) are far too
//! large for dense storage, so the adjacency matrix, its GCN normalization
//! and the sparse-dense product `Â · X` all operate on this CSR type.

use std::sync::OnceLock;

use crate::kernel;
use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, grouped per row.
    indices: Vec<usize>,
    /// Non-zero values, aligned with `indices`.
    values: Vec<f32>,
    /// Lazily computed transpose, shared across backward passes: a graph
    /// adjacency is transposed once per [`CsrMatrix`] instead of once per
    /// epoch (see [`CsrMatrix::spmm_transpose`]).
    transpose_cache: OnceLock<Box<CsrMatrix>>,
}

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        // The cache is dropped on clone; it repopulates on first use.
        Self {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
            transpose_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The transpose cache is derived state and excluded from equality.
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate entries are summed.  Entries with value `0.0` are dropped.
    ///
    /// # Panics
    /// Panics when a triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        // Counting sort over row indices into one flat buffer: O(nnz + rows)
        // and two allocations total, instead of the per-row `Vec<Vec<_>>`
        // construction this replaced (O(rows) allocations).
        let mut offsets = vec![0usize; rows + 2];
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "CsrMatrix::from_triplets: entry ({}, {}) out of bounds for {}x{}",
                r,
                c,
                rows,
                cols
            );
            offsets[r + 2] += 1;
        }
        for r in 2..offsets.len() {
            offsets[r] += offsets[r - 1];
        }
        // `offsets[r + 1]` is now the insertion cursor of row `r`; after the
        // scatter it has advanced to the row's end, making `offsets[..=rows]`
        // the row-boundary array.
        let mut entries: Vec<(usize, f32)> = vec![(0, 0.0); triplets.len()];
        for &(r, c, v) in triplets {
            entries[offsets[r + 1]] = (c, v);
            offsets[r + 1] += 1;
        }

        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for r in 0..rows {
            let row = &mut entries[offsets[r]..offsets[r + 1]];
            // Stable sort keeps duplicate entries in insertion order, so
            // their (floating-point) summation order is deterministic.
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix directly from pre-validated components, skipping
    /// the counting sort of [`CsrMatrix::from_triplets`]. The hot sampled
    /// data plane assembles blocks in row/column order already; this
    /// constructor lets it avoid re-sorting ~nnz entries per block.
    ///
    /// Requirements (checked in debug builds): `indptr` has `rows + 1`
    /// monotone entries starting at 0 and ending at `indices.len()`;
    /// `indices` and `values` have equal length; each row's columns are
    /// strictly ascending and `< cols`; values are non-zero.
    ///
    /// # Panics
    /// Panics (debug builds) when the components violate the CSR invariants.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indptr.first(), Some(&0));
        debug_assert_eq!(indptr.last(), Some(&indices.len()));
        debug_assert_eq!(indices.len(), values.len());
        #[cfg(debug_assertions)]
        for r in 0..rows {
            debug_assert!(indptr[r] <= indptr[r + 1], "indptr must be monotone");
            let row = &indices[indptr[r]..indptr[r + 1]];
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {} columns must be strictly ascending",
                r
            );
            debug_assert!(
                row.iter().all(|&c| c < cols),
                "row {} has a column out of bounds",
                r
            );
        }
        debug_assert!(values.iter().all(|&v| v != 0.0), "values must be non-zero");
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
        }
    }

    /// Builds an unweighted adjacency matrix (every edge has weight 1) from an
    /// edge list.  The edges are inserted as given; call
    /// [`CsrMatrix::symmetrize`] for an undirected graph.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let triplets: Vec<(usize, usize, f32)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// The identity matrix as CSR.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
            transpose_cache: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.indptr[r];
        let end = self.indptr[r + 1];
        self.indices[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Neighbour column indices of row `r`.
    pub fn row_indices(&self, r: usize) -> &[usize] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Out-degree (number of stored entries) of row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Weighted degree (sum of values) of every row.
    pub fn weighted_degrees(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Unweighted degree (entry count) of every row.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Reads a single entry (O(row nnz)).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.row_iter(r)
            .find(|&(col, _)| col == c)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Returns all `(row, col, value)` triplets.
    pub fn triplets(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.push((r, c, v));
            }
        }
        out
    }

    /// Transpose (also CSR), via a direct counting sort over column indices:
    /// `O(nnz + cols)`, no intermediate triplet materialization. Within each
    /// output row the entries stay ordered by their source row, which keeps
    /// downstream floating-point accumulation order identical to a serial
    /// scatter — [`CsrMatrix::spmm_transpose`] relies on this.
    pub fn transpose(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c + 1] += 1;
        }
        for c in 1..indptr.len() {
            indptr[c] += indptr[c - 1];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let slot = cursor[c];
                indices[slot] = r;
                values[slot] = v;
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
        }
    }

    /// The transpose, computed once per matrix and cached (the backward pass
    /// of `Â · X` message passing hits this every epoch).
    pub fn transposed_cached(&self) -> &CsrMatrix {
        self.transpose_cache
            .get_or_init(|| Box::new(self.transpose()))
    }

    /// Returns `max(self, self^T)` entry-wise, making an adjacency symmetric.
    pub fn symmetrize(&self) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        let mut triplets = Vec::with_capacity(self.nnz() * 2);
        for (r, c, v) in self.triplets() {
            triplets.push((r, c, v));
            if r != c {
                triplets.push((c, r, v));
            }
        }
        // Duplicate (r,c) pairs sum in from_triplets; clamp weights back to the
        // max to keep an unweighted adjacency unweighted.
        let summed = CsrMatrix::from_triplets(self.rows, self.cols, &triplets);
        let capped: Vec<(usize, usize, f32)> = summed
            .triplets()
            .into_iter()
            .map(|(r, c, v)| (r, c, v.min(self.get(r, c).max(self.get(c, r)))))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &capped)
    }

    /// Adds the identity to a square matrix (self-loops).
    pub fn add_self_loops(&self) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "add_self_loops requires square");
        let mut triplets = self.triplets();
        for i in 0..self.rows {
            if self.get(i, i) == 0.0 {
                triplets.push((i, i, 1.0));
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Symmetric GCN normalization `D^{-1/2} (A + I) D^{-1/2}`.
    pub fn gcn_normalize(&self) -> CsrMatrix {
        let with_loops = self.add_self_loops();
        let deg = with_loops.weighted_degrees();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let triplets: Vec<(usize, usize, f32)> = with_loops
            .triplets()
            .into_iter()
            .map(|(r, c, v)| (r, c, v * inv_sqrt[r] * inv_sqrt[c]))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Row-stochastic normalization `D^{-1} A` (no self-loops added).
    pub fn row_normalize(&self) -> CsrMatrix {
        let deg = self.weighted_degrees();
        let triplets: Vec<(usize, usize, f32)> = self
            .triplets()
            .into_iter()
            .map(|(r, c, v)| {
                let d = deg[r];
                (r, c, if d > 0.0 { v / d } else { 0.0 })
            })
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Splits `0..rows` into at most `parts` contiguous ranges of roughly
    /// equal non-zero count (row boundaries only). Returns the boundary
    /// array `b` with `b[0] = 0` and `b.last() = rows`.
    fn balanced_row_partition(&self, parts: usize) -> Vec<usize> {
        let total = self.nnz();
        let parts = parts.max(1);
        let target = total.div_ceil(parts).max(1);
        let mut bounds = Vec::with_capacity(parts + 1);
        bounds.push(0);
        let mut threshold = target;
        for r in 1..self.rows {
            if self.indptr[r] >= threshold {
                bounds.push(r);
                threshold = self.indptr[r] + target;
            }
        }
        bounds.push(self.rows);
        bounds
    }

    /// Sparse-dense product `self * dense`.
    ///
    /// Parallel over contiguous row ranges with balanced non-zero counts
    /// (so power-law degree distributions don't serialize on the hub rows);
    /// each range owns a disjoint slice of the output, and per-row
    /// accumulation order is fixed, so results are bit-identical across
    /// thread counts. Small products run serially.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_into(dense, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] into a caller-provided (pool-backed) output.
    ///
    /// `out` must be `rows x dense.cols()` and **zeroed** — the kernel
    /// accumulates onto it.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: inner dimensions differ ({}x{} * {}x{})",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let cols = dense.cols();
        assert_eq!(
            out.shape(),
            (self.rows, cols),
            "spmm_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            cols
        );
        if cols == 0 || self.nnz() == 0 {
            return;
        }
        let work = self.nnz() * cols;
        if work >= kernel::PAR_SPMM_WORK && rayon::current_num_threads() > 1 {
            self.spmm_partitioned_into(dense, out, rayon::current_num_threads() * 4);
        } else {
            self.spmm_serial_into(dense, out);
        }
    }

    /// The serial row loop of [`CsrMatrix::spmm_into`] — also the reference
    /// the partitioned path must match bit for bit.
    fn spmm_serial_into(&self, dense: &Matrix, out: &mut Matrix) {
        for r in 0..self.rows {
            let out_row = out.row_mut(r);
            for (c, v) in self.row_iter(r) {
                kernel::axpy(out_row, v, dense.row(c));
            }
        }
    }

    /// The partitioned body of [`CsrMatrix::spmm_into`]: splits the
    /// destination rows into `parts` balanced-nnz contiguous ranges, each
    /// owning a disjoint slice of the output.  Per-row accumulation order is
    /// the same as the serial loop, so the result is bit-identical for every
    /// partition and thread count.  Works for bipartite (non-square) shapes:
    /// the partition runs over *destination* rows while every range gathers
    /// from all of `dense`.
    fn spmm_partitioned_into(&self, dense: &Matrix, out: &mut Matrix, parts: usize) {
        use rayon::prelude::*;
        let cols = dense.cols();
        let bounds = self.balanced_row_partition(parts);
        // Slice the output into one disjoint block per row range.
        let mut blocks: Vec<(usize, &mut [f32])> = Vec::with_capacity(bounds.len() - 1);
        let mut rest = out.data_mut();
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut((w[1] - w[0]) * cols);
            blocks.push((w[0], head));
            rest = tail;
        }
        blocks.into_par_iter().for_each(|(row0, block)| {
            for (i, out_row) in block.chunks_mut(cols).enumerate() {
                for (c, v) in self.row_iter(row0 + i) {
                    kernel::axpy(out_row, v, dense.row(c));
                }
            }
        });
    }

    /// Test hooks: the serial reference and the forced-partition path of
    /// [`CsrMatrix::spmm`], exposed so bit-identity can be checked on any
    /// machine regardless of its thread count or the work threshold.
    #[doc(hidden)]
    pub fn spmm_serial(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_serial_into(dense, &mut out);
        out
    }

    /// See [`CsrMatrix::spmm_serial`].
    #[doc(hidden)]
    pub fn spmm_partitioned(&self, dense: &Matrix, parts: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        if dense.cols() > 0 && self.nnz() > 0 {
            self.spmm_partitioned_into(dense, &mut out, parts);
        }
        out
    }

    /// Sparse-transpose times dense: `self^T * dense`.
    ///
    /// Large products use the cached CSR transpose (computed once per
    /// matrix, see [`CsrMatrix::transposed_cached`]) and run the parallel
    /// gather-form [`CsrMatrix::spmm`]; because the transpose keeps source
    /// rows ordered, this produces bit-identical results to the serial
    /// scatter fallback.
    pub fn spmm_transpose(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, dense.cols());
        self.spmm_transpose_into(dense, &mut out);
        out
    }

    /// [`CsrMatrix::spmm_transpose`] into a caller-provided (pool-backed)
    /// output.
    ///
    /// `out` must be `cols x dense.cols()` and **zeroed**.
    pub fn spmm_transpose_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm_transpose: row mismatch {} vs {}",
            self.rows,
            dense.rows()
        );
        let cols = dense.cols();
        let work = self.nnz() * cols;
        if work >= kernel::PAR_SPMM_WORK && rayon::current_num_threads() > 1 {
            self.transposed_cached().spmm_into(dense, out);
            return;
        }
        assert_eq!(
            out.shape(),
            (self.cols, cols),
            "spmm_transpose_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.cols,
            cols
        );
        for r in 0..self.rows {
            let src = dense.row(r);
            for (c, v) in self.row_iter(r) {
                kernel::axpy(out.row_mut(c), v, src);
            }
        }
    }

    /// Densifies the matrix (only sensible for small matrices such as
    /// condensed graphs).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Builds a CSR matrix from a dense matrix, dropping entries below `tol`.
    pub fn from_dense(dense: &Matrix, tol: f32) -> CsrMatrix {
        let mut triplets = Vec::new();
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v.abs() > tol {
                    triplets.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
    }

    /// Extracts the induced submatrix on the given (row = col) index set.
    /// Index `i` of the result corresponds to `nodes[i]` of the original.
    pub fn induced_submatrix(&self, nodes: &[usize]) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "induced_submatrix requires square");
        let mut position = vec![usize::MAX; self.rows];
        for (new, &old) in nodes.iter().enumerate() {
            position[old] = new;
        }
        let mut triplets = Vec::new();
        for (new_r, &old_r) in nodes.iter().enumerate() {
            for (c, v) in self.row_iter(old_r) {
                let new_c = position[c];
                if new_c != usize::MAX {
                    triplets.push((new_r, new_c, v));
                }
            }
        }
        CsrMatrix::from_triplets(nodes.len(), nodes.len(), &triplets)
    }

    /// Returns a copy with the listed (undirected) edges removed.
    pub fn remove_edges(&self, edges: &[(usize, usize)]) -> CsrMatrix {
        use std::collections::HashSet;
        let forbidden: HashSet<(usize, usize)> =
            edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        let triplets: Vec<(usize, usize, f32)> = self
            .triplets()
            .into_iter()
            .filter(|&(r, c, _)| !forbidden.contains(&(r, c)))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // 0 - 1, 1 - 2 (undirected)
        CsrMatrix::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn builds_from_triplets_and_dedups() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 0.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn degrees_and_row_iter() {
        let m = small();
        assert_eq!(m.degrees(), vec![1, 2, 1]);
        let row1: Vec<(usize, f32)> = m.row_iter(1).collect();
        assert_eq!(row1, vec![(0, 1.0), (2, 1.0)]);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = small();
        let x = Matrix::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sparse_result = m.spmm(&x);
        let dense_result = m.to_dense().matmul(&x);
        assert!(sparse_result.approx_eq(&dense_result, 1e-6));
    }

    #[test]
    fn partitioned_spmm_is_bit_identical_to_serial_on_bipartite_blocks() {
        // A sampled bipartite block: 193 destination rows gathering from 611
        // source nodes, with a skewed degree distribution (hub rows) so the
        // balanced-nnz partition produces uneven row ranges.  Values use
        // odd reciprocals so any accumulation-order change flips bits.
        let mut triplets = Vec::new();
        for r in 0..193usize {
            let degree = if r % 37 == 0 { 143 } else { 1 + (r * 7) % 11 };
            for k in 0..degree {
                let c = (r * 131 + k * 17) % 611;
                triplets.push((r, c, 1.0 / (1.0 + (r * 613 + c) as f32)));
            }
        }
        let block = CsrMatrix::from_triplets(193, 611, &triplets);
        let x = Matrix::from_fn(611, 23, |r, c| ((r * 29 + c * 7) % 97) as f32 / 9.7 - 5.0);
        let serial = block.spmm_serial(&x);
        for parts in [1, 2, 3, 7, 16, 64] {
            let partitioned = block.spmm_partitioned(&x, parts);
            assert_eq!(
                serial
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                partitioned
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "partitioned spmm diverged from serial at parts={parts}"
            );
        }
        // The public entry point (whatever path it picks on this machine)
        // must agree too.
        assert_eq!(serial.data(), block.spmm(&x).data());
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let x = Matrix::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let a = m.spmm_transpose(&x);
        let b = m.to_dense().transpose().matmul(&x);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn gcn_normalization_rows_bounded() {
        let m = small();
        let norm = m.gcn_normalize();
        // Every entry of the normalized adjacency is in (0, 1].
        for (_, _, v) in norm.triplets() {
            assert!(v > 0.0 && v <= 1.0);
        }
        // Self-loops present.
        for i in 0..3 {
            assert!(norm.get(i, i) > 0.0);
        }
    }

    #[test]
    fn row_normalize_rows_sum_to_one() {
        let m = small();
        let norm = m.row_normalize();
        for r in 0..3 {
            let s: f32 = norm.row_iter(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let m = CsrMatrix::from_edges(3, &[(0, 1), (2, 1)]);
        let s = m.symmetrize();
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 2), 1.0);
    }

    #[test]
    fn induced_submatrix_relabels() {
        let m = small();
        let sub = m.induced_submatrix(&[1, 2]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.get(0, 1), 1.0); // old (1,2)
        assert_eq!(sub.get(1, 0), 1.0);
        assert_eq!(sub.get(0, 0), 0.0);
    }

    #[test]
    fn remove_edges_removes_both_directions() {
        let m = small();
        let pruned = m.remove_edges(&[(0, 1)]);
        assert_eq!(pruned.get(0, 1), 0.0);
        assert_eq!(pruned.get(1, 0), 0.0);
        assert_eq!(pruned.get(1, 2), 1.0);
    }

    #[test]
    fn dense_round_trip() {
        let m = small();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(back, m);
    }
}
