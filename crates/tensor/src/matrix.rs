//! Dense row-major `f32` matrix used throughout the BGC reproduction.
//!
//! The matrix is deliberately simple: a contiguous `Vec<f32>` plus a shape.
//! All the heavy numerical kernels the paper needs (mat-mul, transpose,
//! element-wise maps, reductions, row operations) live here; the actual
//! compute is routed through the blocked, parallel substrate in
//! [`crate::kernel`], and differentiable versions are layered on top by
//! [`crate::tape`].

use crate::kernel;
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Reusable transpose-pack scratch for [`Matrix::transpose_matmul`] and
    /// [`Matrix::matmul_transpose`].  Both helpers run in the training hot
    /// loop (every backward pass packs a gradient operand); without reuse
    /// each call pays a fresh multi-megabyte zeroed allocation whose page
    /// faults dominate the pack itself.
    static PACK_BUFFER: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-local scratch slice of exactly `len` elements.
/// The contents are unspecified on entry — `transpose_into` overwrites every
/// element before `gemm` reads it.
fn with_pack_buffer(len: usize, f: impl FnOnce(&mut [f32])) {
    PACK_BUFFER.with(|cell| {
        let mut buffer = cell.borrow_mut();
        if buffer.len() < len {
            buffer.resize(len, 0.0);
        }
        f(&mut buffer[..len]);
    });
}

/// A dense, row-major matrix of `f32` values.
///
/// Shapes are validated eagerly: every operation that combines two matrices
/// panics with a descriptive message when the shapes are incompatible.  This
/// mirrors the behaviour of the dense tensors the original paper relied on
/// and keeps the call sites free of `Result` plumbing for programmer errors.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::new: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// A matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// A matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a list of equally sized rows.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {} has length {}, expected {}",
                i,
                r.len(),
                cols
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::new(1, values.len(), values.to_vec())
    }

    /// Builds a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::new(values.len(), 1, values.to_vec())
    }

    /// A one-hot encoded label matrix with `classes` columns.
    pub fn one_hot(labels: &[usize], classes: usize) -> Self {
        let mut m = Self::zeros(labels.len(), classes);
        for (i, &l) in labels.iter().enumerate() {
            assert!(
                l < classes,
                "Matrix::one_hot: label {} out of range for {} classes",
                l,
                classes
            );
            m.set(i, l, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns a new matrix with the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "select_rows: index {} out of bounds for {} rows",
                idx,
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Returns a new matrix with the selected columns, in order.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Stacks two matrices vertically (`self` on top of `other`).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::new(self.rows + other.rows, self.cols, data)
    }

    /// Stacks two matrices horizontally (`self` left of `other`).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Matrix transpose (cache-blocked).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernel::transpose_into(self.rows, self.cols, &self.data, &mut out.data);
        out
    }

    /// Dense matrix multiplication `self * other`.
    ///
    /// Routed through the blocked kernel substrate ([`crate::kernel::gemm`]):
    /// cache-tiled, depth-unrolled, autovectorized, and parallel over output
    /// row blocks for larger problems. Note the inner loops are branch-free;
    /// sparse operands should use [`crate::sparse::CsrMatrix::spmm`] instead
    /// of relying on zero-skipping here.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernel::gemm(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Computes `self^T * other` through the shared blocked kernel: the
    /// left operand is transpose-packed (cache-blocked copy), then the
    /// product runs as a plain [`crate::kernel::gemm`]. The pack is `O(r*m)`
    /// against `O(r*m*n)` compute, and buys the vectorized/parallel kernel.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        with_pack_buffer(self.data.len(), |packed| {
            kernel::transpose_into(self.rows, self.cols, &self.data, packed);
            kernel::gemm(
                self.cols,
                self.rows,
                other.cols,
                packed,
                &other.data,
                &mut out.data,
            );
        });
        out
    }

    /// Computes `self * other^T` through the shared blocked kernel: the
    /// right operand is transpose-packed, then the product runs as a plain
    /// [`crate::kernel::gemm`]. This replaces the per-entry dot-product
    /// formulation, whose serial reduction LLVM cannot vectorize.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        with_pack_buffer(other.data.len(), |packed| {
            kernel::transpose_into(other.rows, other.cols, &other.data, packed);
            kernel::gemm(
                self.rows,
                self.cols,
                other.rows,
                &self.data,
                packed,
                &mut out.data,
            );
        });
        out
    }

    /// Overwrites `self` with the contents of an equally shaped `src`.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(
            self.shape(),
            src.shape(),
            "copy_from: shape mismatch {:?} vs {:?}",
            self.shape(),
            src.shape()
        );
        self.data.copy_from_slice(&src.data);
    }

    /// [`Matrix::matmul`] into a caller-provided output (zeroed here), so
    /// steady-state loops can reuse one buffer instead of allocating.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            other.cols
        );
        out.data.fill(0.0);
        kernel::gemm(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// [`Matrix::sub`] into a caller-provided output.
    pub fn sub_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(out.shape(), self.shape(), "sub_into: output shape mismatch");
        kernel::binary_map_into(&self.data, &other.data, &mut out.data, |a, b| a - b);
    }

    /// [`Matrix::softmax_rows`] into a caller-provided output.
    pub fn softmax_rows_into(&self, out: &mut Matrix) {
        out.copy_from(self);
        kernel::for_each_row(&mut out.data, self.cols, |_, row| softmax_row_in_place(row));
    }

    /// [`Matrix::transpose`] into a caller-provided output.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.cols,
            self.rows
        );
        kernel::transpose_into(self.rows, self.cols, &self.data, &mut out.data);
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds a scalar to every entry.
    pub fn add_scalar(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// Applies `f` to every entry, producing a new matrix. Parallel for
    /// large matrices (see [`crate::kernel::PAR_ELEM_WORK`]).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        kernel::unary_map_into(&self.data, &mut out.data, f);
        out
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        kernel::unary_map_inplace(&mut self.data, f);
    }

    /// Combines two equally-shaped matrices entry-wise. Parallel for large
    /// matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        kernel::binary_map_into(&self.data, &other.data, &mut out.data, f);
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        kernel::binary_map_inplace(&mut self.data, &other.data, |a, b| a + b);
    }

    /// In-place `self += s * other` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign: shape mismatch"
        );
        kernel::binary_map_inplace(&mut self.data, &other.data, move |a, b| a + s * b);
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        kernel::unary_map_inplace(&mut self.data, move |v| v * s);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum entry (negative infinity for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum entry (positive infinity for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Sums of every row as a vector. Parallel for large matrices.
    pub fn row_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.rows];
        kernel::map_rows_into(&self.data, self.cols, &mut sums, |_, row| row.iter().sum());
        sums
    }

    /// Sums of every column as a vector.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of every row.
    pub fn row_means(&self) -> Vec<f32> {
        self.row_sums()
            .into_iter()
            .map(|s| {
                if self.cols == 0 {
                    0.0
                } else {
                    s / self.cols as f32
                }
            })
            .collect()
    }

    /// Mean of every column as a `1 x cols` matrix.
    pub fn col_mean_matrix(&self) -> Matrix {
        let mut sums = self.col_sums();
        let n = self.rows.max(1) as f32;
        for s in &mut sums {
            *s /= n;
        }
        Matrix::row_vector(&sums)
    }

    /// Index of the maximum value of row `r` (first maximum wins).
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Index of the maximum value in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_argmax(r)).collect()
    }

    /// Row-wise softmax (non-differentiable helper; the differentiable version
    /// lives on the tape). Parallel over rows for large matrices.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        kernel::for_each_row(&mut out.data, self.cols, |_, row| softmax_row_in_place(row));
        out
    }

    /// Applies ReLU entry-wise.
    pub fn relu(&self) -> Matrix {
        self.map(|v| v.max(0.0))
    }

    /// L2-normalizes every row (rows with tiny norm are left unchanged).
    /// Parallel over rows for large matrices.
    pub fn l2_normalize_rows(&self) -> Matrix {
        let mut out = self.clone();
        kernel::for_each_row(&mut out.data, self.cols, |_, row| {
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        });
        out
    }

    /// Cosine similarity between two row slices (0 when either is ~zero).
    pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        let denom = na.sqrt() * nb.sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            dot / denom
        }
    }

    /// Euclidean distance between two row slices.
    pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "euclidean_distance: length mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    /// Whether every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Whether any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Clamps all entries to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Matrix {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// The one softmax-row routine every softmax in the workspace shares
/// (max-shifted exp, in-order sum, divide with a zero-sum guard).  The
/// tape's fused cross-entropy backward replays exactly this sequence, so
/// keeping a single copy is what preserves the engine's bit-identity
/// guarantee.
pub fn softmax_row_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_indexes() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer_length() {
        let _ = Matrix::new(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::new(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let via_helper = a.transpose_matmul(&b);
        let via_explicit = a.transpose().matmul(&b);
        assert!(via_helper.approx_eq(&via_explicit, 1e-6));
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::new(4, 3, vec![1.0; 12]);
        let via_helper = a.matmul_transpose(&b);
        let via_explicit = a.matmul(&b.transpose());
        assert!(via_helper.approx_eq(&via_explicit, 1e-6));
    }

    #[test]
    fn one_hot_encodes_labels() {
        let m = Matrix::one_hot(&[0, 2, 1], 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let m = Matrix::new(2, 3, vec![0.1, 0.9, 0.0, 3.0, 1.0, 2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn stacking_preserves_content() {
        let a = Matrix::new(1, 2, vec![1.0, 2.0]);
        let b = Matrix::new(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let h = b.hstack(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::new(3, 3, (1..=9).map(|v| v as f32).collect());
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn cosine_similarity_behaves() {
        assert!((Matrix::cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((Matrix::cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(Matrix::cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn reductions_are_consistent() {
        let m = Matrix::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert!((m.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let m = Matrix::new(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let n = m.l2_normalize_rows();
        let norm0: f32 = n.row(0).iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm0 - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }
}
