//! Length-keyed buffer pool backing the allocation-free training engine.
//!
//! Every inner training loop of the paper (Eq. 12/16 victim training,
//! Eq. 13/17 trigger updates, Eq. 14/18 gradient matching) records the same
//! computation graph epoch after epoch, so every intermediate buffer has the
//! same length in every epoch.  [`BufferPool`] exploits that: instead of
//! returning buffers to the allocator when a [`crate::Tape`] is reset, their
//! backing `Vec<f32>` storage is parked in a bucket keyed by its length and
//! handed back out on the next request of that length.  After the first epoch
//! the hot loop performs (almost) no heap allocation.
//!
//! The pool is deliberately length-keyed rather than shape-keyed: a dense
//! row-major [`Matrix`] is a flat `Vec<f32>` plus a shape, so two shapes with
//! the same element count can share storage.
//!
//! Buffers handed out by [`BufferPool::raw`] carry **unspecified contents**
//! (whatever the previous user left behind) and must be fully overwritten;
//! [`BufferPool::zeros`] / [`BufferPool::filled`] / [`BufferPool::copy_of`]
//! return fully initialized matrices.  The pool counts every allocator miss
//! in [`PoolStats`], which is what the `training` bench reports as
//! bytes-allocated-per-epoch.

use crate::matrix::Matrix;

/// Allocation counters of a [`BufferPool`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served by a fresh heap allocation (pool miss).
    pub fresh_allocations: usize,
    /// Total bytes of those fresh allocations.
    pub fresh_bytes: usize,
    /// Buffer requests served from the pool (no allocation).
    pub reuses: usize,
}

/// A recycling pool of `Vec<f32>` buffers (bucketed by length) and
/// `Vec<usize>` index lists (any capacity).
#[derive(Debug, Default)]
pub struct BufferPool {
    /// `(len, parked buffers of exactly that len)`, linear-scanned: a
    /// training loop only ever touches a handful of distinct lengths.
    f32_buckets: Vec<(usize, Vec<Vec<f32>>)>,
    /// Parked index lists, reused for row-selection / label storage.
    usize_buckets: Vec<Vec<usize>>,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimum length for which a larger parked buffer may be truncated to
    /// serve a smaller request (below this, a fresh allocation is cheaper
    /// than burying a large buffer's capacity in a tiny one).
    const BEST_FIT_MIN_LEN: usize = 4096;
    /// A parked buffer may serve a request down to a quarter of its length.
    const BEST_FIT_MAX_RATIO: usize = 4;

    /// Takes a `len`-element buffer with **unspecified contents**.
    ///
    /// Exact-length hits come first (steady-state epoch loops reuse their own
    /// buffers).  On a miss, a large request may be served by *truncating*
    /// the smallest parked buffer within [`Self::BEST_FIT_MAX_RATIO`] —
    /// without this, workloads whose buffer sizes differ every step (sampled
    /// minibatches draw a different receptive field per batch) would park
    /// every size forever and answer every request with a fresh allocation.
    fn take_raw(&mut self, len: usize) -> Vec<f32> {
        if let Some((_, bucket)) = self.f32_buckets.iter_mut().find(|(l, _)| *l == len) {
            if let Some(buf) = bucket.pop() {
                debug_assert_eq!(buf.len(), len);
                self.stats.reuses += 1;
                return buf;
            }
        }
        if len >= Self::BEST_FIT_MIN_LEN {
            let mut best: Option<(usize, usize)> = None;
            for (i, (l, bucket)) in self.f32_buckets.iter().enumerate() {
                if *l > len
                    && *l <= len * Self::BEST_FIT_MAX_RATIO
                    && !bucket.is_empty()
                    && best.is_none_or(|(_, best_len)| *l < best_len)
                {
                    best = Some((i, *l));
                }
            }
            if let Some(mut buf) = best.and_then(|(i, _)| self.f32_buckets[i].1.pop()) {
                buf.truncate(len);
                self.stats.reuses += 1;
                return buf;
            }
        }
        self.stats.fresh_allocations += 1;
        self.stats.fresh_bytes += len * std::mem::size_of::<f32>();
        vec![0.0; len]
    }

    /// A `rows x cols` matrix with **unspecified contents**; the caller must
    /// overwrite every entry before the matrix is read.
    pub fn raw(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::new(rows, cols, self.take_raw(rows * cols))
    }

    /// A zero-filled `rows x cols` matrix.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.take_raw(rows * cols);
        buf.fill(0.0);
        Matrix::new(rows, cols, buf)
    }

    /// A constant-filled `rows x cols` matrix.
    pub fn filled(&mut self, rows: usize, cols: usize, value: f32) -> Matrix {
        let mut buf = self.take_raw(rows * cols);
        buf.fill(value);
        Matrix::new(rows, cols, buf)
    }

    /// A pool-backed copy of `src`.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        self.copy_reshaped(src, src.rows(), src.cols())
    }

    /// A pool-backed copy of `src`'s elements viewed as `rows x cols`
    /// (row-major order preserved; `rows * cols` must equal `src.len()`).
    pub fn copy_reshaped(&mut self, src: &Matrix, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            src.len(),
            rows * cols,
            "copy_reshaped: cannot view {} elements as {}x{}",
            src.len(),
            rows,
            cols
        );
        let mut buf = self.take_raw(src.len());
        buf.copy_from_slice(src.data());
        Matrix::new(rows, cols, buf)
    }

    /// Returns a matrix's storage to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.recycle_vec(m.into_data());
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_vec(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 {
            return;
        }
        match self.f32_buckets.iter_mut().find(|(l, _)| *l == len) {
            Some((_, bucket)) => bucket.push(buf),
            None => self.f32_buckets.push((len, vec![buf])),
        }
    }

    /// A pool-backed copy of an index list.
    pub fn copy_indices(&mut self, src: &[usize]) -> Vec<usize> {
        let mut buf = self.usize_buckets.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    /// Returns an index list to the pool.
    pub fn recycle_indices(&mut self, buf: Vec<usize>) {
        self.usize_buckets.push(buf);
    }

    /// Allocation counters accumulated since construction (or the last
    /// [`BufferPool::reset_stats`]).
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Zeroes the allocation counters.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Drops every parked buffer (the counters are kept).  Used by the
    /// training bench to emulate the pre-pool engine, where every epoch
    /// re-allocated from the system allocator.
    pub fn clear(&mut self) {
        self.f32_buckets.clear();
        self.usize_buckets.clear();
    }

    /// Overwrites every parked `f32` buffer with `value`.  Test-only hook for
    /// proving that a [`crate::Tape::reset`] cannot leak stale values into
    /// the next epoch: poison the pool, re-run, and compare bit-for-bit.
    #[doc(hidden)]
    pub fn poison(&mut self, value: f32) {
        for (_, bucket) in &mut self.f32_buckets {
            for buf in bucket {
                buf.fill(value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        let mut pool = BufferPool::new();
        let m = pool.zeros(3, 4);
        pool.recycle(m);
        let m2 = pool.filled(4, 3, 7.0);
        assert_eq!(m2.shape(), (4, 3));
        assert!(m2.data().iter().all(|&v| v == 7.0));
        let s = pool.stats();
        assert_eq!(s.fresh_allocations, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.fresh_bytes, 12 * 4);
    }

    #[test]
    fn copy_of_and_reshape_preserve_contents() {
        let mut pool = BufferPool::new();
        let src = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let copy = pool.copy_of(&src);
        assert_eq!(copy, src);
        let reshaped = pool.copy_reshaped(&src, 3, 2);
        assert_eq!(reshaped.data(), src.data());
        assert_eq!(reshaped.shape(), (3, 2));
    }

    #[test]
    fn index_lists_round_trip() {
        let mut pool = BufferPool::new();
        let idx = pool.copy_indices(&[5, 1, 2]);
        assert_eq!(idx, vec![5, 1, 2]);
        pool.recycle_indices(idx);
        let idx2 = pool.copy_indices(&[9]);
        assert_eq!(idx2, vec![9]);
    }

    #[test]
    #[should_panic(expected = "copy_reshaped")]
    fn copy_reshaped_rejects_bad_sizes() {
        let mut pool = BufferPool::new();
        let src = Matrix::ones(2, 2);
        let _ = pool.copy_reshaped(&src, 3, 2);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        let m = pool.zeros(0, 5);
        pool.recycle(m);
        let again = pool.zeros(0, 3);
        assert_eq!(again.shape(), (0, 3));
    }
}
