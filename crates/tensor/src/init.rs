//! Random initialization helpers (Gaussian via Box–Muller, Xavier/Glorot,
//! uniform) built on top of `rand::StdRng` so that every experiment is fully
//! reproducible from a `u64` seed.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard normal value using the Box–Muller transform.
///
/// `rand_distr` is intentionally not a dependency (the offline crate budget is
/// limited), so the Gaussian sampling the paper's initializers need is
/// implemented directly.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 > f32::EPSILON {
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            let v = r * theta.cos();
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// A matrix with i.i.d. `N(mean, std^2)` entries.
pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * sample_standard_normal(rng))
}

/// A matrix with i.i.d. `U(lo, hi)` entries.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Kaiming/He normal initialization (suited to ReLU activations).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    randn(fan_in, fan_out, 0.0, std, rng)
}

/// Samples `k` distinct indices from `0..n` (Fisher–Yates style partial
/// shuffle).  Panics when `k > n`.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {} items from a pool of {}", k, n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Shuffles a slice in place.
pub fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    let n = items.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_has_roughly_correct_moments() {
        let mut rng = rng_from_seed(7);
        let m = randn(200, 50, 0.0, 1.0, &mut rng);
        let mean = m.mean();
        let var = m.map(|v| (v - mean) * (v - mean)).mean();
        assert!(mean.abs() < 0.05, "mean {} too far from 0", mean);
        assert!((var - 1.0).abs() < 0.1, "variance {} too far from 1", var);
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = rng_from_seed(1);
        let m = xavier_uniform(100, 50, &mut rng);
        let limit = (6.0 / 150.0_f32).sqrt();
        assert!(m.max() <= limit && m.min() >= -limit);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = randn(4, 4, 0.0, 1.0, &mut rng_from_seed(42));
        let b = randn(4, 4, 0.0, 1.0, &mut rng_from_seed(42));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = rng_from_seed(3);
        let s = sample_without_replacement(100, 40, &mut rng);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(sorted.iter().all(|&v| v < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sampling_too_many_panics() {
        let mut rng = rng_from_seed(3);
        let _ = sample_without_replacement(3, 4, &mut rng);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = rng_from_seed(9);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
