//! The blocked, parallel kernel substrate behind every dense hot path.
//!
//! All three mat-mul variants of [`crate::matrix::Matrix`] (`matmul`,
//! `transpose_matmul`, `matmul_transpose`), the CSR SpMM of
//! [`crate::sparse::CsrMatrix`] and the element-wise / row-wise helpers the
//! autodiff tape leans on are routed through this module. The design:
//!
//! * **One inner kernel.** [`gemm`] computes `C = A · B` over an
//!   `MC x KC x NC` cache tiling with the depth loop unrolled by [`KU`] and
//!   the column loop written with `chunks_exact` so LLVM autovectorizes it
//!   (each output lane is an independent accumulation — no floating-point
//!   reassociation is required, unlike a dot-product formulation).
//!   `transpose_matmul` and `matmul_transpose` are expressed as a blocked
//!   transpose *pack* ([`transpose_into`]) followed by the same kernel, so
//!   every variant shares one tuned code path.
//! * **Parallelism over output row-blocks.** Each rayon task owns `MC`
//!   consecutive output rows (a disjoint `&mut` chunk of `C`), so no
//!   synchronization is needed and the floating-point evaluation order —
//!   hence the bit pattern of the result — is identical for the serial and
//!   parallel paths and for every thread count.
//! * **Serial fallbacks.** Problems below [`PAR_GEMM_WORK`] multiply-adds
//!   (or [`PAR_ELEM_WORK`] elements for the element-wise helpers) skip the
//!   pool entirely.
//!
//! The pre-substrate reference implementations are retained as
//! [`naive_matmul`], [`naive_transpose_matmul`] and
//! [`naive_matmul_transpose`]; property tests assert agreement and the
//! `substrate` criterion bench measures the speedup against them.

use rayon::prelude::*;

/// Rows of `C` (and `A`) each parallel task owns.
pub const MC: usize = 64;
/// Depth (`k`) blocking factor: one `KC x NC` tile of `B` stays hot in L2.
pub const KC: usize = 128;
/// Column (`n`) blocking factor.
pub const NC: usize = 512;
/// Unroll factor of the depth loop inside the micro-kernel.
pub const KU: usize = 4;
/// Vector width the micro-kernel is written for (f32 lanes of one AVX2
/// register; wider ISAs fuse adjacent iterations).
pub const LANES: usize = 8;

/// Minimum multiply-add count before a mat-mul goes parallel.
pub const PAR_GEMM_WORK: usize = 1 << 18;
/// Minimum element count before element-wise/row-wise ops go parallel.
pub const PAR_ELEM_WORK: usize = 1 << 16;
/// Minimum `nnz * dense_cols` before SpMM goes parallel.
pub const PAR_SPMM_WORK: usize = 1 << 16;
/// Element-wise parallel chunk size (elements per task).
const ELEM_CHUNK: usize = 1 << 15;

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// `c[j] += a0 * b0[j]` over equal-length slices.
#[inline]
pub fn axpy(c: &mut [f32], a0: f32, b0: &[f32]) {
    let n = c.len();
    let b0 = &b0[..n];
    let split = n - n % LANES;
    let (c_main, c_tail) = c.split_at_mut(split);
    for (cc, bb) in c_main
        .chunks_exact_mut(LANES)
        .zip(b0[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            cc[l] += a0 * bb[l];
        }
    }
    for (cc, &bb) in c_tail.iter_mut().zip(&b0[split..]) {
        *cc += a0 * bb;
    }
}

/// Four fused axpy rows: `c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]`.
///
/// This is the register-blocked heart of [`gemm`]: four rows of `B` are
/// consumed per pass over the output row, quartering the `C` read/write
/// traffic, and every lane is an independent sum so the loop vectorizes
/// without `-ffast-math`-style reassociation.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy4(
    c: &mut [f32],
    a0: f32,
    b0: &[f32],
    a1: f32,
    b1: &[f32],
    a2: f32,
    b2: &[f32],
    a3: f32,
    b3: &[f32],
) {
    let n = c.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let split = n - n % LANES;
    let (c_main, c_tail) = c.split_at_mut(split);
    let iter = c_main
        .chunks_exact_mut(LANES)
        .zip(b0[..split].chunks_exact(LANES))
        .zip(b1[..split].chunks_exact(LANES))
        .zip(b2[..split].chunks_exact(LANES))
        .zip(b3[..split].chunks_exact(LANES));
    for ((((cc, v0), v1), v2), v3) in iter {
        for l in 0..LANES {
            cc[l] += a0 * v0[l] + a1 * v1[l] + a2 * v2[l] + a3 * v3[l];
        }
    }
    // Iterator-zipped tail: the same fused four-term expression per element
    // (bit-identical), but free of bounds checks so LLVM vectorizes the
    // narrow-output case (e.g. `n = num_classes` logits products).
    let tail = c_tail
        .iter_mut()
        .zip(&b0[split..])
        .zip(&b1[split..])
        .zip(&b2[split..])
        .zip(&b3[split..]);
    for ((((cc, &v0), &v1), &v2), &v3) in tail {
        *cc += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
    }
}

/// Computes one `MC`-row block of `C += A_rows · B` through the cache tiling.
///
/// `a_rows` holds the block's rows of `A` (`mb x k`), `c_block` the matching
/// rows of `C` (`mb x n`); `b` is the full `k x n` right operand.
fn gemm_block(a_rows: &[f32], k: usize, n: usize, b: &[f32], c_block: &mut [f32]) {
    debug_assert_eq!(c_block.len() % n, 0);
    let mb = c_block.len() / n;
    debug_assert_eq!(a_rows.len(), mb * k);
    if n < LANES {
        // Narrow outputs (n below one vector width, e.g. `num_classes`-wide
        // logits) keep the whole output row in a register-resident
        // accumulator across the depth loop instead of streaming it through
        // memory per `axpy4` pass.  The per-element floating-point sequence
        // is identical to the wide path's (same fused four-term updates in
        // the same order), so results stay bit-identical.
        match n {
            0 => {}
            1 => narrow_rows::<1>(a_rows, k, b, c_block),
            2 => narrow_rows::<2>(a_rows, k, b, c_block),
            3 => narrow_rows::<3>(a_rows, k, b, c_block),
            4 => narrow_rows::<4>(a_rows, k, b, c_block),
            5 => narrow_rows::<5>(a_rows, k, b, c_block),
            6 => narrow_rows::<6>(a_rows, k, b, c_block),
            7 => narrow_rows::<7>(a_rows, k, b, c_block),
            _ => unreachable!("narrow path requires n < LANES"),
        }
        return;
    }
    for k0 in (0..k).step_by(KC) {
        let kb = KC.min(k - k0);
        for j0 in (0..n).step_by(NC) {
            let nb = NC.min(n - j0);
            for i in 0..mb {
                let a_row = &a_rows[i * k + k0..][..kb];
                let c_row = &mut c_block[i * n + j0..][..nb];
                let mut kk = 0;
                while kk + KU <= kb {
                    axpy4(
                        c_row,
                        a_row[kk],
                        &b[(k0 + kk) * n + j0..][..nb],
                        a_row[kk + 1],
                        &b[(k0 + kk + 1) * n + j0..][..nb],
                        a_row[kk + 2],
                        &b[(k0 + kk + 2) * n + j0..][..nb],
                        a_row[kk + 3],
                        &b[(k0 + kk + 3) * n + j0..][..nb],
                    );
                    kk += KU;
                }
                while kk < kb {
                    axpy(c_row, a_row[kk], &b[(k0 + kk) * n + j0..][..nb]);
                    kk += 1;
                }
            }
        }
    }
}

/// Narrow (`N < LANES`) gemm rows: `c += a · B` with a compile-time output
/// width, so the whole output row lives in a register-resident `[f32; N]`
/// accumulator and the inner loops fully unroll without bounds checks.
/// Performs exactly the wide path's per-element operations — `c[j] +=
/// a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]` per `KU`-group, then
/// single-row updates for the depth tail — in the same order, so results
/// are bit-identical to the `axpy4`/`axpy` path.
fn narrow_rows<const N: usize>(a_rows: &[f32], k: usize, b: &[f32], c_block: &mut [f32]) {
    let row_at =
        |kk: usize| -> &[f32; N] { b[kk * N..kk * N + N].try_into().expect("exact-width b row") };
    for (a_row, c_row) in a_rows.chunks_exact(k).zip(c_block.chunks_exact_mut(N)) {
        let mut acc: [f32; N] = c_row.try_into().expect("exact-width c row");
        let mut kk = 0;
        while kk + KU <= k {
            let a0 = a_row[kk];
            let a1 = a_row[kk + 1];
            let a2 = a_row[kk + 2];
            let a3 = a_row[kk + 3];
            let (b0, b1, b2, b3) = (row_at(kk), row_at(kk + 1), row_at(kk + 2), row_at(kk + 3));
            for j in 0..N {
                acc[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += KU;
        }
        while kk < k {
            let a0 = a_row[kk];
            let b0 = row_at(kk);
            for j in 0..N {
                acc[j] += a0 * b0[j];
            }
            kk += 1;
        }
        c_row.copy_from_slice(&acc);
    }
}

/// Dense `C = A · B` into a zeroed output buffer.
///
/// `a` is `m x k`, `b` is `k x n`, `out` is `m x n` and must be zeroed (or
/// hold a partial sum to accumulate onto). Parallel over `MC`-row blocks of
/// the output above [`PAR_GEMM_WORK`] multiply-adds; the serial and parallel
/// paths produce bit-identical results.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let work = m * k * n;
    if work < PAR_GEMM_WORK || rayon::current_num_threads() == 1 {
        for (blk, c_block) in out.chunks_mut(MC * n).enumerate() {
            let i0 = blk * MC;
            let mb = c_block.len() / n;
            gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
        }
    } else {
        out.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(blk, c_block)| {
                let i0 = blk * MC;
                let mb = c_block.len() / n;
                gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
            });
    }
}

/// Serial-only variant of [`gemm`] (used by the determinism property test to
/// check that the parallel path is bit-identical).
#[doc(hidden)]
pub fn gemm_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (blk, c_block) in out.chunks_mut(MC * n).enumerate() {
        let i0 = blk * MC;
        let mb = c_block.len() / n;
        gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
    }
}

/// Cache-blocked transpose: writes the `cols x rows` transpose of the
/// row-major `rows x cols` matrix `src` into `dst`.
///
/// Used both as the public transpose and as the pack step that lets
/// `transpose_matmul` / `matmul_transpose` share the [`gemm`] kernel.
pub fn transpose_into(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    for r0 in (0..rows).step_by(TB) {
        let rb = TB.min(rows - r0);
        for c0 in (0..cols).step_by(TB) {
            let cb = TB.min(cols - c0);
            for r in r0..r0 + rb {
                for c in c0..c0 + cb {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Element-wise / row-wise substrate
// ---------------------------------------------------------------------------

/// `dst[i] = f(src[i])`, parallel above [`PAR_ELEM_WORK`] elements.
pub fn unary_map_into(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(src.len(), dst.len());
    if dst.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = f(s);
        }
    } else {
        dst.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let src = &src[off..off + chunk.len()];
                for (d, &s) in chunk.iter_mut().zip(src) {
                    *d = f(s);
                }
            });
    }
}

/// `dst[i] = f(a[i], b[i])`, parallel above [`PAR_ELEM_WORK`] elements.
pub fn binary_map_into(a: &[f32], b: &[f32], dst: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), dst.len());
    debug_assert_eq!(b.len(), dst.len());
    if dst.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
            *d = f(x, y);
        }
    } else {
        dst.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let (a, b) = (&a[off..off + chunk.len()], &b[off..off + chunk.len()]);
                for (d, (&x, &y)) in chunk.iter_mut().zip(a.iter().zip(b)) {
                    *d = f(x, y);
                }
            });
    }
}

/// `a[i] = f(a[i])` in place, parallel above [`PAR_ELEM_WORK`] elements.
pub fn unary_map_inplace(a: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    if a.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for v in a.iter_mut() {
            *v = f(*v);
        }
    } else {
        a.par_chunks_mut(ELEM_CHUNK).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }
}

/// `a[i] = f(a[i], b[i])` in place, parallel above [`PAR_ELEM_WORK`] elements.
pub fn binary_map_inplace(a: &mut [f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = f(*x, y);
        }
    } else {
        a.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let b = &b[off..off + chunk.len()];
                for (x, &y) in chunk.iter_mut().zip(b) {
                    *x = f(*x, y);
                }
            });
    }
}

/// Applies `f(row_index, row)` to every `cols`-wide row of `data` in place,
/// parallel above [`PAR_ELEM_WORK`] total elements. Each row is owned by
/// exactly one task, so per-row reductions stay deterministic.
pub fn for_each_row(data: &mut [f32], cols: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if cols == 0 {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    if data.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (r, row) in data.chunks_mut(cols).enumerate() {
            f(r, row);
        }
    } else {
        let rows_per_task = (ELEM_CHUNK / cols).max(1);
        data.par_chunks_mut(rows_per_task * cols)
            .enumerate()
            .for_each(|(blk, block)| {
                let r0 = blk * rows_per_task;
                for (i, row) in block.chunks_mut(cols).enumerate() {
                    f(r0 + i, row);
                }
            });
    }
}

/// Writes `f(row_index, row)` of a `cols`-wide row-major matrix into `out`
/// (one value per row), parallel above [`PAR_ELEM_WORK`] source elements.
pub fn map_rows_into(
    data: &[f32],
    cols: usize,
    out: &mut [f32],
    f: impl Fn(usize, &[f32]) -> f32 + Sync,
) {
    if cols == 0 {
        for (r, o) in out.iter_mut().enumerate() {
            *o = f(r, &[]);
        }
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    debug_assert_eq!(out.len(), data.len() / cols);
    if data.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (r, o) in out.iter_mut().enumerate() {
            *o = f(r, &data[r * cols..(r + 1) * cols]);
        }
    } else {
        let rows_per_task = (ELEM_CHUNK / cols).max(1);
        out.par_chunks_mut(rows_per_task)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let r0 = blk * rows_per_task;
                for (i, o) in chunk.iter_mut().enumerate() {
                    let r = r0 + i;
                    *o = f(r, &data[r * cols..(r + 1) * cols]);
                }
            });
    }
}

// ---------------------------------------------------------------------------
// Retained naive reference implementations
// ---------------------------------------------------------------------------

/// The pre-substrate serial `ikj` mat-mul (branch-free): reference for
/// property tests and the `substrate` benchmark baseline.
pub fn naive_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-substrate serial `A^T · B` (outer-product accumulation over rows).
pub fn naive_transpose_matmul(r: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for row in 0..r {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-substrate serial `A · B^T` (per-entry dot products — the scalar
/// reduction LLVM cannot vectorize, which is what the substrate replaces).
pub fn naive_matmul_transpose(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1].
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (x >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {}: {} vs {}",
                i,
                x,
                y
            );
        }
    }

    #[test]
    fn gemm_matches_naive_across_awkward_shapes() {
        // Shapes straddling every blocking boundary: empty, single row/col,
        // exact multiples of MC/KC/NC, and off-by-one around them.
        for &(m, k, n) in &[
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (1, 130, 1),
            (2, 3, 5),
            (7, 129, 17),
            (64, 128, 512),
            (65, 127, 513),
            (33, 260, 9),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut got);
            naive_matmul(m, k, n, &a, &b, &mut want);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn gemm_parallel_is_bit_identical_to_serial() {
        let (m, k, n) = (150, 96, 75);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut serial = vec![0.0; m * n];
        let mut parallel = vec![0.0; m * n];
        gemm_serial(m, k, n, &a, &b, &mut serial);
        gemm(m, k, n, &a, &b, &mut parallel);
        assert_eq!(serial, parallel, "parallel gemm must be bit-identical");
    }

    #[test]
    fn transpose_round_trips() {
        for &(r, c) in &[(0, 5), (1, 1), (7, 33), (64, 64), (65, 31)] {
            let src = fill(r * c, 5);
            let mut t = vec![0.0; r * c];
            let mut back = vec![0.0; r * c];
            transpose_into(r, c, &src, &mut t);
            transpose_into(c, r, &t, &mut back);
            assert_eq!(src, back);
        }
    }

    #[test]
    fn elementwise_helpers_match_serial_semantics() {
        let n = PAR_ELEM_WORK + 37; // force the parallel path on multi-core
        let a = fill(n, 6);
        let b = fill(n, 7);
        let mut out = vec![0.0; n];
        binary_map_into(&a, &b, &mut out, |x, y| x * y + 1.0);
        for i in (0..n).step_by(997) {
            assert_eq!(out[i], a[i] * b[i] + 1.0);
        }
        let mut inplace = a.clone();
        binary_map_inplace(&mut inplace, &b, |x, y| x - y);
        for i in (0..n).step_by(997) {
            assert_eq!(inplace[i], a[i] - b[i]);
        }
        let mut mapped = vec![0.0; n];
        unary_map_into(&a, &mut mapped, |x| x.max(0.0));
        let mut mapped_inplace = a.clone();
        unary_map_inplace(&mut mapped_inplace, |x| x.max(0.0));
        assert_eq!(mapped, mapped_inplace);
    }

    #[test]
    fn row_helpers_cover_every_row_once() {
        let (rows, cols) = (513, 129); // > PAR_ELEM_WORK elements
        let mut data = vec![0.0f32; rows * cols];
        for_each_row(&mut data, cols, |r, row| {
            for v in row.iter_mut() {
                *v += (r + 1) as f32;
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], (r + 1) as f32);
        }
        let mut sums = vec![0.0f32; rows];
        map_rows_into(&data, cols, &mut sums, |_, row| row.iter().sum());
        for (r, &s) in sums.iter().enumerate() {
            assert_eq!(s, (r + 1) as f32 * cols as f32);
        }
    }
}
