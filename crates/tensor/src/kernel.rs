//! The blocked, parallel kernel substrate behind every dense hot path.
//!
//! All three mat-mul variants of [`crate::matrix::Matrix`] (`matmul`,
//! `transpose_matmul`, `matmul_transpose`), the CSR SpMM of
//! [`crate::sparse::CsrMatrix`] and the element-wise / row-wise helpers the
//! autodiff tape leans on are routed through this module. The design:
//!
//! * **One inner kernel.** [`gemm`] computes `C = A · B` over an
//!   `MC x KC x NC` cache tiling with the depth loop unrolled by [`KU`] and
//!   the column loop written with `chunks_exact` so LLVM autovectorizes it
//!   (each output lane is an independent accumulation — no floating-point
//!   reassociation is required, unlike a dot-product formulation).
//!   `transpose_matmul` and `matmul_transpose` are expressed as a blocked
//!   transpose *pack* ([`transpose_into`]) followed by the same kernel, so
//!   every variant shares one tuned code path.
//! * **Parallelism over output row-blocks.** Each rayon task owns `MC`
//!   consecutive output rows (a disjoint `&mut` chunk of `C`), so no
//!   synchronization is needed and the floating-point evaluation order —
//!   hence the bit pattern of the result — is identical for the serial and
//!   parallel paths and for every thread count.
//! * **Serial fallbacks.** Problems below [`PAR_GEMM_WORK`] multiply-adds
//!   (or [`PAR_ELEM_WORK`] elements for the element-wise helpers) skip the
//!   pool entirely.
//!
//! The pre-substrate reference implementations are retained as
//! [`naive_matmul`], [`naive_transpose_matmul`] and
//! [`naive_matmul_transpose`]; property tests assert agreement and the
//! `substrate` criterion bench measures the speedup against them.

use rayon::prelude::*;
use std::sync::OnceLock;

/// Rows of `C` (and `A`) each parallel task owns.
pub const MC: usize = 64;
/// Depth (`k`) blocking factor: one `KC x NC` tile of `B` stays hot in L2.
pub const KC: usize = 128;
/// Column (`n`) blocking factor.
pub const NC: usize = 512;
/// Unroll factor of the depth loop inside the micro-kernel.
pub const KU: usize = 4;
/// Vector width the micro-kernel is written for (f32 lanes of one AVX2
/// register; wider ISAs fuse adjacent iterations).
pub const LANES: usize = 8;

/// Minimum multiply-add count before a mat-mul goes parallel.
pub const PAR_GEMM_WORK: usize = 1 << 18;
/// Minimum element count before element-wise/row-wise ops go parallel.
pub const PAR_ELEM_WORK: usize = 1 << 16;
/// Minimum `nnz * dense_cols` before SpMM goes parallel.
pub const PAR_SPMM_WORK: usize = 1 << 16;
/// Element-wise parallel chunk size (elements per task).
const ELEM_CHUNK: usize = 1 << 15;

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch
// ---------------------------------------------------------------------------

/// The instruction-set tier the micro-kernels run at, selected once per
/// process by [`simd_level`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Portable blocked loops (LLVM autovectorizes them for the build
    /// target's baseline ISA).
    Scalar,
    /// Hand-written AVX2 kernels with register-resident accumulators.
    /// Selected when the CPU reports both AVX2 and FMA; the kernels still
    /// use separate multiply/add steps in the scalar association order, so
    /// results are bit-identical to the portable path.
    Avx2,
}

impl SimdLevel {
    /// Stable label for benchmark JSON and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Returns the micro-kernel tier, detected once at first use.
///
/// Set `BGC_SIMD=scalar` to force the portable fallback (useful when
/// bisecting a suspected kernel bug); any other value keeps auto-detection.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::env::var_os("BGC_SIMD").is_some_and(|v| v == "scalar") {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return SimdLevel::Avx2;
        }
        SimdLevel::Scalar
    })
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// `c[j] += a0 * b0[j]` over equal-length slices.
#[inline]
#[allow(unsafe_code)] // sanctioned SIMD dispatch (see crate-level lint note)
pub fn axpy(c: &mut [f32], a0: f32, b0: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd_level() == SimdLevel::Avx2 {
        // SAFETY: the Avx2 level is only ever selected when the CPU
        // reports AVX2 support.
        unsafe { avx2::axpy(c, a0, b0) };
        return;
    }
    axpy_scalar(c, a0, b0);
}

/// Portable body of [`axpy`] (also the reference the AVX2 twin must match
/// bit-for-bit).
#[inline]
fn axpy_scalar(c: &mut [f32], a0: f32, b0: &[f32]) {
    let n = c.len();
    let b0 = &b0[..n];
    let split = n - n % LANES;
    let (c_main, c_tail) = c.split_at_mut(split);
    for (cc, bb) in c_main
        .chunks_exact_mut(LANES)
        .zip(b0[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            cc[l] += a0 * bb[l];
        }
    }
    for (cc, &bb) in c_tail.iter_mut().zip(&b0[split..]) {
        *cc += a0 * bb;
    }
}

/// Four fused axpy rows: `c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]`.
///
/// This is the register-blocked heart of [`gemm`]: four rows of `B` are
/// consumed per pass over the output row, quartering the `C` read/write
/// traffic, and every lane is an independent sum so the loop vectorizes
/// without `-ffast-math`-style reassociation.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy4(
    c: &mut [f32],
    a0: f32,
    b0: &[f32],
    a1: f32,
    b1: &[f32],
    a2: f32,
    b2: &[f32],
    a3: f32,
    b3: &[f32],
) {
    let n = c.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let split = n - n % LANES;
    let (c_main, c_tail) = c.split_at_mut(split);
    let iter = c_main
        .chunks_exact_mut(LANES)
        .zip(b0[..split].chunks_exact(LANES))
        .zip(b1[..split].chunks_exact(LANES))
        .zip(b2[..split].chunks_exact(LANES))
        .zip(b3[..split].chunks_exact(LANES));
    for ((((cc, v0), v1), v2), v3) in iter {
        for l in 0..LANES {
            cc[l] += a0 * v0[l] + a1 * v1[l] + a2 * v2[l] + a3 * v3[l];
        }
    }
    // Iterator-zipped tail: the same fused four-term expression per element
    // (bit-identical), but free of bounds checks so LLVM vectorizes the
    // narrow-output case (e.g. `n = num_classes` logits products).
    let tail = c_tail
        .iter_mut()
        .zip(&b0[split..])
        .zip(&b1[split..])
        .zip(&b2[split..])
        .zip(&b3[split..]);
    for ((((cc, &v0), &v1), &v2), &v3) in tail {
        *cc += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
    }
}

/// Computes one `MC`-row block of `C += A_rows · B` through the cache tiling.
///
/// `a_rows` holds the block's rows of `A` (`mb x k`), `c_block` the matching
/// rows of `C` (`mb x n`); `b` is the full `k x n` right operand.
#[allow(unsafe_code)] // sanctioned SIMD dispatch (see crate-level lint note)
fn gemm_block(a_rows: &[f32], k: usize, n: usize, b: &[f32], c_block: &mut [f32]) {
    debug_assert_eq!(c_block.len() % n, 0);
    let mb = c_block.len() / n;
    debug_assert_eq!(a_rows.len(), mb * k);
    if n < LANES {
        narrow_block(a_rows, k, n, b, c_block);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd_level() == SimdLevel::Avx2 {
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            for j0 in (0..n).step_by(NC) {
                let nb = NC.min(n - j0);
                for i in 0..mb {
                    let a_row = &a_rows[i * k + k0..][..kb];
                    let c_row = &mut c_block[i * n + j0..][..nb];
                    // SAFETY: Avx2 is only selected when the CPU has it;
                    // the row kernel's b-tile window `(k0..k0+kb) x
                    // (j0..j0+nb)` lies inside the `k x n` operand.
                    unsafe { avx2::gemm_row(a_row, b, k0 * n + j0, n, c_row) };
                }
            }
        }
        return;
    }
    gemm_block_portable(a_rows, k, n, b, c_block, mb);
}

/// Narrow-output (`n < LANES`) dispatch shared by the portable and SIMD
/// paths: outputs below one vector width (e.g. `num_classes`-wide logits)
/// keep the whole output row in a register-resident accumulator across the
/// depth loop instead of streaming it through memory per `axpy4` pass. The
/// per-element floating-point sequence is identical to the wide path's
/// (same fused four-term updates in the same order), so results stay
/// bit-identical.
fn narrow_block(a_rows: &[f32], k: usize, n: usize, b: &[f32], c_block: &mut [f32]) {
    match n {
        0 => {}
        1 => narrow_rows::<1>(a_rows, k, b, c_block),
        2 => narrow_rows::<2>(a_rows, k, b, c_block),
        3 => narrow_rows::<3>(a_rows, k, b, c_block),
        4 => narrow_rows::<4>(a_rows, k, b, c_block),
        5 => narrow_rows::<5>(a_rows, k, b, c_block),
        6 => narrow_rows::<6>(a_rows, k, b, c_block),
        7 => narrow_rows::<7>(a_rows, k, b, c_block),
        _ => unreachable!("narrow path requires n < LANES"),
    }
}

/// Portable wide-path (`n >= LANES`) loop nest of [`gemm_block`]: the
/// autovectorized `axpy4`/`axpy` cache tiling, also the reference the AVX2
/// path must match bit-for-bit.
fn gemm_block_portable(
    a_rows: &[f32],
    k: usize,
    n: usize,
    b: &[f32],
    c_block: &mut [f32],
    mb: usize,
) {
    for k0 in (0..k).step_by(KC) {
        let kb = KC.min(k - k0);
        for j0 in (0..n).step_by(NC) {
            let nb = NC.min(n - j0);
            for i in 0..mb {
                let a_row = &a_rows[i * k + k0..][..kb];
                let c_row = &mut c_block[i * n + j0..][..nb];
                let mut kk = 0;
                while kk + KU <= kb {
                    axpy4(
                        c_row,
                        a_row[kk],
                        &b[(k0 + kk) * n + j0..][..nb],
                        a_row[kk + 1],
                        &b[(k0 + kk + 1) * n + j0..][..nb],
                        a_row[kk + 2],
                        &b[(k0 + kk + 2) * n + j0..][..nb],
                        a_row[kk + 3],
                        &b[(k0 + kk + 3) * n + j0..][..nb],
                    );
                    kk += KU;
                }
                while kk < kb {
                    axpy_scalar(c_row, a_row[kk], &b[(k0 + kk) * n + j0..][..nb]);
                    kk += 1;
                }
            }
        }
    }
}

/// Narrow (`N < LANES`) gemm rows: `c += a · B` with a compile-time output
/// width, so the whole output row lives in a register-resident `[f32; N]`
/// accumulator and the inner loops fully unroll without bounds checks.
/// Performs exactly the wide path's per-element operations — `c[j] +=
/// a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]` per `KU`-group, then
/// single-row updates for the depth tail — in the same order, so results
/// are bit-identical to the `axpy4`/`axpy` path.
fn narrow_rows<const N: usize>(a_rows: &[f32], k: usize, b: &[f32], c_block: &mut [f32]) {
    let row_at = |kk: usize| -> [f32; N] {
        let mut row = [0.0f32; N];
        row.copy_from_slice(&b[kk * N..kk * N + N]);
        row
    };
    for (a_row, c_row) in a_rows.chunks_exact(k).zip(c_block.chunks_exact_mut(N)) {
        let mut acc = [0.0f32; N];
        acc.copy_from_slice(c_row);
        let mut kk = 0;
        while kk + KU <= k {
            let a0 = a_row[kk];
            let a1 = a_row[kk + 1];
            let a2 = a_row[kk + 2];
            let a3 = a_row[kk + 3];
            let (b0, b1, b2, b3) = (row_at(kk), row_at(kk + 1), row_at(kk + 2), row_at(kk + 3));
            for j in 0..N {
                acc[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += KU;
        }
        while kk < k {
            let a0 = a_row[kk];
            let b0 = row_at(kk);
            for j in 0..N {
                acc[j] += a0 * b0[j];
            }
            kk += 1;
        }
        c_row.copy_from_slice(&acc);
    }
}

/// Dense `C = A · B` into a zeroed output buffer.
///
/// `a` is `m x k`, `b` is `k x n`, `out` is `m x n` and must be zeroed (or
/// hold a partial sum to accumulate onto). Parallel over `MC`-row blocks of
/// the output above [`PAR_GEMM_WORK`] multiply-adds; the serial and parallel
/// paths produce bit-identical results.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let work = m * k * n;
    if work < PAR_GEMM_WORK || rayon::current_num_threads() == 1 {
        for (blk, c_block) in out.chunks_mut(MC * n).enumerate() {
            let i0 = blk * MC;
            let mb = c_block.len() / n;
            gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
        }
    } else {
        out.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(blk, c_block)| {
                let i0 = blk * MC;
                let mb = c_block.len() / n;
                gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
            });
    }
}

/// Serial-only variant of [`gemm`] (used by the determinism property test to
/// check that the parallel path is bit-identical).
#[doc(hidden)]
pub fn gemm_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (blk, c_block) in out.chunks_mut(MC * n).enumerate() {
        let i0 = blk * MC;
        let mb = c_block.len() / n;
        gemm_block(&a[i0 * k..(i0 + mb) * k], k, n, b, c_block);
    }
}

/// Serial variant of [`gemm`] that never dispatches to the SIMD
/// micro-kernels: the reference side of the SIMD agreement gates in the
/// substrate bench and the kernel tests. The dispatched path must match it
/// bit for bit on every shape.
#[doc(hidden)]
pub fn gemm_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (blk, c_block) in out.chunks_mut(MC * n).enumerate() {
        let i0 = blk * MC;
        let mb = c_block.len() / n;
        let a_rows = &a[i0 * k..(i0 + mb) * k];
        if n < LANES {
            narrow_block(a_rows, k, n, b, c_block);
        } else {
            gemm_block_portable(a_rows, k, n, b, c_block, mb);
        }
    }
}

/// Cache-blocked transpose: writes the `cols x rows` transpose of the
/// row-major `rows x cols` matrix `src` into `dst`.
///
/// Used both as the public transpose and as the pack step that lets
/// `transpose_matmul` / `matmul_transpose` share the [`gemm`] kernel.
pub fn transpose_into(rows: usize, cols: usize, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    for r0 in (0..rows).step_by(TB) {
        let rb = TB.min(rows - r0);
        for c0 in (0..cols).step_by(TB) {
            let cb = TB.min(cols - c0);
            for r in r0..r0 + rb {
                for c in c0..c0 + cb {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Element-wise / row-wise substrate
// ---------------------------------------------------------------------------

/// `dst[i] = f(src[i])`, parallel above [`PAR_ELEM_WORK`] elements.
pub fn unary_map_into(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(src.len(), dst.len());
    if dst.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = f(s);
        }
    } else {
        dst.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let src = &src[off..off + chunk.len()];
                for (d, &s) in chunk.iter_mut().zip(src) {
                    *d = f(s);
                }
            });
    }
}

/// `dst[i] = f(a[i], b[i])`, parallel above [`PAR_ELEM_WORK`] elements.
pub fn binary_map_into(a: &[f32], b: &[f32], dst: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), dst.len());
    debug_assert_eq!(b.len(), dst.len());
    if dst.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
            *d = f(x, y);
        }
    } else {
        dst.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let (a, b) = (&a[off..off + chunk.len()], &b[off..off + chunk.len()]);
                for (d, (&x, &y)) in chunk.iter_mut().zip(a.iter().zip(b)) {
                    *d = f(x, y);
                }
            });
    }
}

/// `a[i] = f(a[i])` in place, parallel above [`PAR_ELEM_WORK`] elements.
pub fn unary_map_inplace(a: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    if a.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for v in a.iter_mut() {
            *v = f(*v);
        }
    } else {
        a.par_chunks_mut(ELEM_CHUNK).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }
}

/// `a[i] = f(a[i], b[i])` in place, parallel above [`PAR_ELEM_WORK`] elements.
pub fn binary_map_inplace(a: &mut [f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = f(*x, y);
        }
    } else {
        a.par_chunks_mut(ELEM_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let off = ci * ELEM_CHUNK;
                let b = &b[off..off + chunk.len()];
                for (x, &y) in chunk.iter_mut().zip(b) {
                    *x = f(*x, y);
                }
            });
    }
}

/// Applies `f(row_index, row)` to every `cols`-wide row of `data` in place,
/// parallel above [`PAR_ELEM_WORK`] total elements. Each row is owned by
/// exactly one task, so per-row reductions stay deterministic.
pub fn for_each_row(data: &mut [f32], cols: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if cols == 0 {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    if data.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (r, row) in data.chunks_mut(cols).enumerate() {
            f(r, row);
        }
    } else {
        let rows_per_task = (ELEM_CHUNK / cols).max(1);
        data.par_chunks_mut(rows_per_task * cols)
            .enumerate()
            .for_each(|(blk, block)| {
                let r0 = blk * rows_per_task;
                for (i, row) in block.chunks_mut(cols).enumerate() {
                    f(r0 + i, row);
                }
            });
    }
}

/// Writes `f(row_index, row)` of a `cols`-wide row-major matrix into `out`
/// (one value per row), parallel above [`PAR_ELEM_WORK`] source elements.
pub fn map_rows_into(
    data: &[f32],
    cols: usize,
    out: &mut [f32],
    f: impl Fn(usize, &[f32]) -> f32 + Sync,
) {
    if cols == 0 {
        for (r, o) in out.iter_mut().enumerate() {
            *o = f(r, &[]);
        }
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    debug_assert_eq!(out.len(), data.len() / cols);
    if data.len() < PAR_ELEM_WORK || rayon::current_num_threads() == 1 {
        for (r, o) in out.iter_mut().enumerate() {
            *o = f(r, &data[r * cols..(r + 1) * cols]);
        }
    } else {
        let rows_per_task = (ELEM_CHUNK / cols).max(1);
        out.par_chunks_mut(rows_per_task)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let r0 = blk * rows_per_task;
                for (i, o) in chunk.iter_mut().enumerate() {
                    let r = r0 + i;
                    *o = f(r, &data[r * cols..(r + 1) * cols]);
                }
            });
    }
}

// ---------------------------------------------------------------------------
// Retained naive reference implementations
// ---------------------------------------------------------------------------

/// The pre-substrate serial `ikj` mat-mul (branch-free): reference for
/// property tests and the `substrate` benchmark baseline.
pub fn naive_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-substrate serial `A^T · B` (outer-product accumulation over rows).
pub fn naive_transpose_matmul(r: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for row in 0..r {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-substrate serial `A · B^T` (per-entry dot products — the scalar
/// reduction LLVM cannot vectorize, which is what the substrate replaces).
pub fn naive_matmul_transpose(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 micro-kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // the crate's one sanctioned unsafe surface (std::arch)
mod avx2 {
    //! AVX2 twins of the portable micro-kernels.
    //!
    //! Bit-identity contract: every lane performs exactly the portable
    //! path's operation sequence — [`KU`]-grouped updates in ascending depth
    //! order, each group summed left-to-right with separate multiply and add
    //! steps (never an FMA instruction, which would drop an intermediate
    //! rounding) — so the dispatched and scalar kernels produce
    //! byte-identical matrices and cached experiment cells stay valid
    //! across machines with and without AVX2.
    use super::{KU, LANES};
    use std::arch::x86_64::*;

    // The unrolled broadcast groups below are written for the current
    // depth-unroll factor.
    const _: () = assert!(KU == 4, "avx2 kernels unroll the depth loop by 4");

    /// `c[j] += a0 * b0[j]`, vector twin of [`super::axpy_scalar`].
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(c: &mut [f32], a0: f32, b0: &[f32]) {
        let n = c.len();
        let b0 = &b0[..n];
        let split = n - n % LANES;
        let va = _mm256_set1_ps(a0);
        let cp = c.as_mut_ptr();
        let bp = b0.as_ptr();
        let mut j = 0;
        while j < split {
            let prod = _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(j)));
            _mm256_storeu_ps(cp.add(j), _mm256_add_ps(_mm256_loadu_ps(cp.add(j)), prod));
            j += LANES;
        }
        while j < n {
            *cp.add(j) += a0 * *bp.add(j);
            j += 1;
        }
    }

    /// One output row of the cache-tiled gemm: `c_row += a_row · B_tile`,
    /// where the `kb x nb` tile of `B` starts at flat offset `b_off` in `b`
    /// with row stride `n`. Output lanes live in register accumulators
    /// across the whole depth loop — the portable path streams `c_row`
    /// through memory every [`KU`] steps instead, but applies the same
    /// values in the same order, so results match bit for bit while this
    /// path skips almost all of the `C` read/write traffic.
    ///
    /// # Safety
    /// Requires AVX2; the caller guarantees the tile window
    /// `b[b_off + kk*n + j]` for `kk < kb, j < nb` lies inside `b`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_row(a_row: &[f32], b: &[f32], b_off: usize, n: usize, c_row: &mut [f32]) {
        let kb = a_row.len();
        let nb = c_row.len();
        debug_assert!(kb == 0 || b_off + (kb - 1) * n + nb <= b.len());
        let split = nb - nb % LANES;
        let ap = a_row.as_ptr();
        let bp = b.as_ptr().add(b_off);
        let cp = c_row.as_mut_ptr();
        const WIDE: usize = 4 * LANES;
        let mut j = 0;
        // Four accumulators (32 lanes) per pass over the depth loop.
        while j + WIDE <= split {
            let mut acc0 = _mm256_loadu_ps(cp.add(j));
            let mut acc1 = _mm256_loadu_ps(cp.add(j + LANES));
            let mut acc2 = _mm256_loadu_ps(cp.add(j + 2 * LANES));
            let mut acc3 = _mm256_loadu_ps(cp.add(j + 3 * LANES));
            let mut kk = 0;
            while kk + KU <= kb {
                let a0 = _mm256_set1_ps(*ap.add(kk));
                let a1 = _mm256_set1_ps(*ap.add(kk + 1));
                let a2 = _mm256_set1_ps(*ap.add(kk + 2));
                let a3 = _mm256_set1_ps(*ap.add(kk + 3));
                let r0 = bp.add(kk * n + j);
                let r1 = bp.add((kk + 1) * n + j);
                let r2 = bp.add((kk + 2) * n + j);
                let r3 = bp.add((kk + 3) * n + j);
                // acc += ((a0*b0 + a1*b1) + a2*b2) + a3*b3 per lane — the
                // scalar axpy4 association, with explicit mul/add steps.
                let mut s0 = _mm256_mul_ps(a0, _mm256_loadu_ps(r0));
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(a1, _mm256_loadu_ps(r1)));
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(a2, _mm256_loadu_ps(r2)));
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(a3, _mm256_loadu_ps(r3)));
                acc0 = _mm256_add_ps(acc0, s0);
                let mut s1 = _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(LANES)));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(a1, _mm256_loadu_ps(r1.add(LANES))));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(a2, _mm256_loadu_ps(r2.add(LANES))));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(a3, _mm256_loadu_ps(r3.add(LANES))));
                acc1 = _mm256_add_ps(acc1, s1);
                let mut s2 = _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(2 * LANES)));
                s2 = _mm256_add_ps(s2, _mm256_mul_ps(a1, _mm256_loadu_ps(r1.add(2 * LANES))));
                s2 = _mm256_add_ps(s2, _mm256_mul_ps(a2, _mm256_loadu_ps(r2.add(2 * LANES))));
                s2 = _mm256_add_ps(s2, _mm256_mul_ps(a3, _mm256_loadu_ps(r3.add(2 * LANES))));
                acc2 = _mm256_add_ps(acc2, s2);
                let mut s3 = _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(3 * LANES)));
                s3 = _mm256_add_ps(s3, _mm256_mul_ps(a1, _mm256_loadu_ps(r1.add(3 * LANES))));
                s3 = _mm256_add_ps(s3, _mm256_mul_ps(a2, _mm256_loadu_ps(r2.add(3 * LANES))));
                s3 = _mm256_add_ps(s3, _mm256_mul_ps(a3, _mm256_loadu_ps(r3.add(3 * LANES))));
                acc3 = _mm256_add_ps(acc3, s3);
                kk += KU;
            }
            while kk < kb {
                let a0 = _mm256_set1_ps(*ap.add(kk));
                let r0 = bp.add(kk * n + j);
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, _mm256_loadu_ps(r0)));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(LANES))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(2 * LANES))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(a0, _mm256_loadu_ps(r0.add(3 * LANES))));
                kk += 1;
            }
            _mm256_storeu_ps(cp.add(j), acc0);
            _mm256_storeu_ps(cp.add(j + LANES), acc1);
            _mm256_storeu_ps(cp.add(j + 2 * LANES), acc2);
            _mm256_storeu_ps(cp.add(j + 3 * LANES), acc3);
            j += WIDE;
        }
        // Single-vector remainder columns.
        while j < split {
            let mut acc = _mm256_loadu_ps(cp.add(j));
            let mut kk = 0;
            while kk + KU <= kb {
                let a0 = _mm256_set1_ps(*ap.add(kk));
                let a1 = _mm256_set1_ps(*ap.add(kk + 1));
                let a2 = _mm256_set1_ps(*ap.add(kk + 2));
                let a3 = _mm256_set1_ps(*ap.add(kk + 3));
                let mut s = _mm256_mul_ps(a0, _mm256_loadu_ps(bp.add(kk * n + j)));
                s = _mm256_add_ps(
                    s,
                    _mm256_mul_ps(a1, _mm256_loadu_ps(bp.add((kk + 1) * n + j))),
                );
                s = _mm256_add_ps(
                    s,
                    _mm256_mul_ps(a2, _mm256_loadu_ps(bp.add((kk + 2) * n + j))),
                );
                s = _mm256_add_ps(
                    s,
                    _mm256_mul_ps(a3, _mm256_loadu_ps(bp.add((kk + 3) * n + j))),
                );
                acc = _mm256_add_ps(acc, s);
                kk += KU;
            }
            while kk < kb {
                let a0 = _mm256_set1_ps(*ap.add(kk));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(a0, _mm256_loadu_ps(bp.add(kk * n + j))));
                kk += 1;
            }
            _mm256_storeu_ps(cp.add(j), acc);
            j += LANES;
        }
        // Scalar tail columns, same depth grouping and association.
        while j < nb {
            let mut acc = *cp.add(j);
            let mut kk = 0;
            while kk + KU <= kb {
                acc += *ap.add(kk) * *bp.add(kk * n + j)
                    + *ap.add(kk + 1) * *bp.add((kk + 1) * n + j)
                    + *ap.add(kk + 2) * *bp.add((kk + 2) * n + j)
                    + *ap.add(kk + 3) * *bp.add((kk + 3) * n + j);
                kk += KU;
            }
            while kk < kb {
                acc += *ap.add(kk) * *bp.add(kk * n + j);
                kk += 1;
            }
            *cp.add(j) = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1].
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (x >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {}: {} vs {}",
                i,
                x,
                y
            );
        }
    }

    #[test]
    fn gemm_matches_naive_across_awkward_shapes() {
        // Shapes straddling every blocking boundary: empty, single row/col,
        // exact multiples of MC/KC/NC, and off-by-one around them.
        for &(m, k, n) in &[
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (1, 130, 1),
            (2, 3, 5),
            (7, 129, 17),
            (64, 128, 512),
            (65, 127, 513),
            (33, 260, 9),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut got);
            naive_matmul(m, k, n, &a, &b, &mut want);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn gemm_parallel_is_bit_identical_to_serial() {
        let (m, k, n) = (150, 96, 75);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut serial = vec![0.0; m * n];
        let mut parallel = vec![0.0; m * n];
        gemm_serial(m, k, n, &a, &b, &mut serial);
        gemm(m, k, n, &a, &b, &mut parallel);
        assert_eq!(serial, parallel, "parallel gemm must be bit-identical");
    }

    #[test]
    fn dispatched_gemm_is_bit_identical_to_scalar_kernels() {
        // On AVX2 hardware this pins the hand-written kernels to the
        // portable path bit-for-bit (the determinism contract the cached
        // experiment grid depends on); elsewhere both sides run the same
        // code and the test is trivially green. Shapes straddle the 32-wide
        // accumulator block, the single-vector loop, the scalar column
        // tail, and the KU depth remainder.
        for &(m, k, n) in &[
            (1, 1, 8),
            (3, 5, 9),
            (7, 129, 17),
            (2, 6, 31),
            (5, 130, 33),
            (64, 128, 512),
            (65, 127, 513),
            (33, 260, 40),
            (4, 3, 7), // narrow path (shared code, sanity)
        ] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 12);
            let mut dispatched = vec![0.0; m * n];
            let mut scalar = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut dispatched);
            gemm_scalar(m, k, n, &a, &b, &mut scalar);
            assert_eq!(
                dispatched, scalar,
                "simd gemm diverged from scalar at ({}, {}, {})",
                m, k, n
            );
        }
    }

    #[test]
    fn dispatched_axpy_is_bit_identical_to_scalar() {
        for &n in &[0usize, 1, 7, 8, 9, 64, 67, 513] {
            let b = fill(n, 21);
            let mut dispatched = fill(n, 22);
            let mut scalar = dispatched.clone();
            axpy(&mut dispatched, 0.73, &b);
            axpy_scalar(&mut scalar, 0.73, &b);
            assert_eq!(dispatched, scalar, "simd axpy diverged at n = {}", n);
        }
    }

    #[test]
    fn transpose_round_trips() {
        for &(r, c) in &[(0, 5), (1, 1), (7, 33), (64, 64), (65, 31)] {
            let src = fill(r * c, 5);
            let mut t = vec![0.0; r * c];
            let mut back = vec![0.0; r * c];
            transpose_into(r, c, &src, &mut t);
            transpose_into(c, r, &t, &mut back);
            assert_eq!(src, back);
        }
    }

    #[test]
    fn elementwise_helpers_match_serial_semantics() {
        let n = PAR_ELEM_WORK + 37; // force the parallel path on multi-core
        let a = fill(n, 6);
        let b = fill(n, 7);
        let mut out = vec![0.0; n];
        binary_map_into(&a, &b, &mut out, |x, y| x * y + 1.0);
        for i in (0..n).step_by(997) {
            assert_eq!(out[i], a[i] * b[i] + 1.0);
        }
        let mut inplace = a.clone();
        binary_map_inplace(&mut inplace, &b, |x, y| x - y);
        for i in (0..n).step_by(997) {
            assert_eq!(inplace[i], a[i] - b[i]);
        }
        let mut mapped = vec![0.0; n];
        unary_map_into(&a, &mut mapped, |x| x.max(0.0));
        let mut mapped_inplace = a.clone();
        unary_map_inplace(&mut mapped_inplace, |x| x.max(0.0));
        assert_eq!(mapped, mapped_inplace);
    }

    #[test]
    fn row_helpers_cover_every_row_once() {
        let (rows, cols) = (513, 129); // > PAR_ELEM_WORK elements
        let mut data = vec![0.0f32; rows * cols];
        for_each_row(&mut data, cols, |r, row| {
            for v in row.iter_mut() {
                *v += (r + 1) as f32;
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], (r + 1) as f32);
        }
        let mut sums = vec![0.0f32; rows];
        map_rows_into(&data, cols, &mut sums, |_, row| row.iter().sum());
        for (r, &s) in sums.iter().enumerate() {
            assert_eq!(s, (r + 1) as f32 * cols as f32);
        }
    }
}
