//! # bgc-tensor
//!
//! Numerical substrate for the Rust reproduction of *"Backdoor Graph
//! Condensation"* (ICDE 2025).  The crate provides:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the kernels graph
//!   neural networks need (mat-mul, transposes, reductions, softmax, ...).
//! * [`CsrMatrix`] — compressed sparse row adjacency matrices with GCN
//!   normalization and sparse-dense products.
//! * [`Tape`] / [`Var`] — a reverse-mode automatic differentiation tape whose
//!   operation set covers GNN training, gradient matching and the BGC trigger
//!   generator (including straight-through binarization and a differentiable
//!   SPD solve for kernel ridge regression).
//! * [`init`] — seeded random initializers (Gaussian, Xavier, Kaiming).
//! * [`linalg`] — Cholesky factorization and SPD solves.
//!
//! The paper's original implementation relied on PyTorch; this crate is the
//! from-scratch substitute (see `DESIGN.md` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod linalg;
pub mod matrix;
pub mod sparse;
pub mod tape;

pub use matrix::Matrix;
pub use sparse::CsrMatrix;
pub use tape::{Gradients, Tape, Var};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::new(rows, cols, data))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matmul_is_associative_with_identity(m in matrix_strategy(4, 5)) {
            let left = Matrix::identity(4).matmul(&m);
            let right = m.matmul(&Matrix::identity(5));
            prop_assert!(left.approx_eq(&m, 1e-4));
            prop_assert!(right.approx_eq(&m, 1e-4));
        }

        #[test]
        fn transpose_is_involution(m in matrix_strategy(3, 6)) {
            prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        }

        #[test]
        fn add_is_commutative(a in matrix_strategy(4, 4), b in matrix_strategy(4, 4)) {
            prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-5));
        }

        #[test]
        fn softmax_rows_are_probability_distributions(m in matrix_strategy(5, 4)) {
            let s = m.softmax_rows();
            for r in 0..5 {
                let sum: f32 = s.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }

        #[test]
        fn csr_roundtrip_preserves_values(
            entries in proptest::collection::vec((0usize..6, 0usize..6, 0.5f32..5.0), 0..20)
        ) {
            // Deduplicate coordinates so the sum-on-duplicate rule does not
            // interfere with the round-trip comparison.
            let mut seen = std::collections::HashSet::new();
            let entries: Vec<_> = entries
                .into_iter()
                .filter(|&(r, c, _)| seen.insert((r, c)))
                .collect();
            let csr = CsrMatrix::from_triplets(6, 6, &entries);
            for &(r, c, v) in &entries {
                prop_assert!((csr.get(r, c) - v).abs() < 1e-6);
            }
            prop_assert_eq!(csr.nnz(), entries.len());
        }

        #[test]
        fn spmm_matches_dense_reference(
            edges in proptest::collection::vec((0usize..8, 0usize..8), 1..24),
            x in matrix_strategy(8, 3),
        ) {
            let csr = CsrMatrix::from_edges(8, &edges);
            let sparse = csr.spmm(&x);
            let dense = csr.to_dense().matmul(&x);
            prop_assert!(sparse.approx_eq(&dense, 1e-4));
        }

        #[test]
        fn gcn_normalization_is_symmetric(
            edges in proptest::collection::vec((0usize..7, 0usize..7), 1..20)
        ) {
            let adj = CsrMatrix::from_edges(7, &edges).symmetrize();
            let norm = adj.gcn_normalize();
            for (r, c, v) in norm.triplets() {
                prop_assert!((norm.get(c, r) - v).abs() < 1e-5);
            }
        }

        #[test]
        fn backward_of_linear_map_matches_closed_form(
            x in matrix_strategy(3, 4),
            w in matrix_strategy(4, 2),
        ) {
            // loss = mean(X W)  =>  dX = (1/(3*2)) * ones(3,2) W^T
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let y = tape.matmul(xv, wv);
            let loss = tape.mean_all(y);
            let grads = tape.backward(loss);
            let expected = Matrix::filled(3, 2, 1.0 / 6.0).matmul(&w.transpose());
            prop_assert!(grads.get(xv).unwrap().approx_eq(&expected, 1e-4));
        }
    }
}
