//! # bgc-tensor
//!
//! Numerical substrate for the Rust reproduction of *"Backdoor Graph
//! Condensation"* (ICDE 2025).  The crate provides:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the kernels graph
//!   neural networks need (mat-mul, transposes, reductions, softmax, ...).
//! * [`CsrMatrix`] — compressed sparse row adjacency matrices with GCN
//!   normalization and sparse-dense products.
//! * [`Tape`] / [`Var`] — a reverse-mode automatic differentiation tape whose
//!   operation set covers GNN training, gradient matching and the BGC trigger
//!   generator (including straight-through binarization and a differentiable
//!   SPD solve for kernel ridge regression).
//! * [`BufferPool`] — the length-keyed buffer pool behind the
//!   allocation-free training engine: [`Tape::reset`] parks every epoch's
//!   buffers for reuse by the next epoch (see `crates/tensor/README.md`).
//! * [`init`] — seeded random initializers (Gaussian, Xavier, Kaiming).
//! * [`linalg`] — Cholesky factorization and SPD solves.
//! * [`kernel`] — the blocked, rayon-parallel kernel substrate every dense
//!   and sparse hot path above is routed through (see
//!   `crates/tensor/README.md` for the tiling scheme and thresholds).
//!
//! The paper's original implementation relied on PyTorch; this crate is the
//! from-scratch substitute (see `DESIGN.md` at the workspace root).

// `unsafe` is denied crate-wide with exactly one sanctioned exception: the
// runtime-dispatched AVX2 micro-kernels in [`kernel`] (`std::arch`
// intrinsics are unsafe by construction). That module carries a scoped
// `allow(unsafe_code)` and is pinned bit-for-bit to the portable kernels by
// the dispatch agreement tests; everything else in the crate must stay
// safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod kernel;
pub mod linalg;
pub mod matrix;
pub mod pool;
pub mod sparse;
pub mod tape;

pub use matrix::Matrix;
pub use pool::{BufferPool, PoolStats};
pub use sparse::CsrMatrix;
pub use tape::{Gradients, Tape, Var};

#[cfg(test)]
mod proptests {
    use super::*;
    use init::{randn, rng_from_seed};
    use proptest::prelude::*;

    fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::new(rows, cols, data))
    }

    /// Dimensions that exercise the substrate's edge cases: empty, 1xN,
    /// exact multiples of the MC/KC/NC tiles, and off-by-one around them.
    const AWKWARD_DIMS: [usize; 10] = [0, 1, 2, 7, 31, 63, 64, 65, 129, 160];

    fn awkward_dim() -> impl Strategy<Value = usize> {
        (0usize..AWKWARD_DIMS.len()).prop_map(|i| AWKWARD_DIMS[i])
    }

    /// Relative agreement within `tol`, scaled by magnitude.
    fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matmul_is_associative_with_identity(m in matrix_strategy(4, 5)) {
            let left = Matrix::identity(4).matmul(&m);
            let right = m.matmul(&Matrix::identity(5));
            prop_assert!(left.approx_eq(&m, 1e-4));
            prop_assert!(right.approx_eq(&m, 1e-4));
        }

        #[test]
        fn transpose_is_involution(m in matrix_strategy(3, 6)) {
            prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        }

        #[test]
        fn add_is_commutative(a in matrix_strategy(4, 4), b in matrix_strategy(4, 4)) {
            prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-5));
        }

        #[test]
        fn softmax_rows_are_probability_distributions(m in matrix_strategy(5, 4)) {
            let s = m.softmax_rows();
            for r in 0..5 {
                let sum: f32 = s.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }

        #[test]
        fn csr_roundtrip_preserves_values(
            entries in proptest::collection::vec((0usize..6, 0usize..6, 0.5f32..5.0), 0..20)
        ) {
            // Deduplicate coordinates so the sum-on-duplicate rule does not
            // interfere with the round-trip comparison.
            let mut seen = std::collections::HashSet::new();
            let entries: Vec<_> = entries
                .into_iter()
                .filter(|&(r, c, _)| seen.insert((r, c)))
                .collect();
            let csr = CsrMatrix::from_triplets(6, 6, &entries);
            for &(r, c, v) in &entries {
                prop_assert!((csr.get(r, c) - v).abs() < 1e-6);
            }
            prop_assert_eq!(csr.nnz(), entries.len());
        }

        #[test]
        fn spmm_matches_dense_reference(
            edges in proptest::collection::vec((0usize..8, 0usize..8), 1..24),
            x in matrix_strategy(8, 3),
        ) {
            let csr = CsrMatrix::from_edges(8, &edges);
            let sparse = csr.spmm(&x);
            let dense = csr.to_dense().matmul(&x);
            prop_assert!(sparse.approx_eq(&dense, 1e-4));
        }

        #[test]
        fn gcn_normalization_is_symmetric(
            edges in proptest::collection::vec((0usize..7, 0usize..7), 1..20)
        ) {
            let adj = CsrMatrix::from_edges(7, &edges).symmetrize();
            let norm = adj.gcn_normalize();
            for (r, c, v) in norm.triplets() {
                prop_assert!((norm.get(c, r) - v).abs() < 1e-5);
            }
        }

        /// The blocked `matmul` agrees with the retained naive reference
        /// across randomized awkward shapes (satellite of the kernel
        /// substrate rewrite).
        #[test]
        fn blocked_matmul_agrees_with_naive(
            m in awkward_dim(),
            k in awkward_dim(),
            n in awkward_dim(),
            seed in 0u64..1000,
        ) {
            let mut rng = rng_from_seed(seed);
            let a = randn(m, k, 0.0, 1.0, &mut rng);
            let b = randn(k, n, 0.0, 1.0, &mut rng);
            let blocked = a.matmul(&b);
            let mut reference = Matrix::zeros(m, n);
            kernel::naive_matmul(m, k, n, a.data(), b.data(), reference.data_mut());
            prop_assert!(close(&blocked, &reference, 1e-4), "matmul {}x{}x{} diverged", m, k, n);
        }

        /// Both transpose variants share the blocked kernel and agree with
        /// their naive references.
        #[test]
        fn blocked_transpose_variants_agree_with_naive(
            m in awkward_dim(),
            k in awkward_dim(),
            n in awkward_dim(),
            seed in 0u64..1000,
        ) {
            let mut rng = rng_from_seed(seed ^ 0xBEEF);
            // A (m x k), B (n x k): A * B^T is m x n.
            let a = randn(m, k, 0.0, 1.0, &mut rng);
            let b = randn(n, k, 0.0, 1.0, &mut rng);
            let blocked = a.matmul_transpose(&b);
            let mut reference = Matrix::zeros(m, n);
            kernel::naive_matmul_transpose(m, k, n, a.data(), b.data(), reference.data_mut());
            prop_assert!(close(&blocked, &reference, 1e-4), "matmul_transpose {}x{}x{} diverged", m, k, n);

            // C (m x k), D (m x n): C^T * D is k x n.
            let c = randn(m, k, 0.0, 1.0, &mut rng);
            let d = randn(m, n, 0.0, 1.0, &mut rng);
            let blocked = c.transpose_matmul(&d);
            let mut reference = Matrix::zeros(k, n);
            kernel::naive_transpose_matmul(m, k, n, c.data(), d.data(), reference.data_mut());
            prop_assert!(close(&blocked, &reference, 1e-4), "transpose_matmul {}x{}x{} diverged", m, k, n);
        }

        /// Same seed => bit-identical output: the parallel kernel must match
        /// the forced-serial path exactly, for every thread count.
        #[test]
        fn blocked_kernels_are_deterministic(seed in 0u64..200) {
            let mut rng = rng_from_seed(seed);
            // Big enough to clear PAR_GEMM_WORK so the parallel path engages
            // on multi-core machines.
            let (m, k, n) = (130, 70, 90);
            let a = randn(m, k, 0.0, 1.0, &mut rng);
            let b = randn(k, n, 0.0, 1.0, &mut rng);
            let first = a.matmul(&b);
            let second = a.matmul(&b);
            prop_assert_eq!(first.data(), second.data());
            let mut serial = Matrix::zeros(m, n);
            kernel::gemm_serial(m, k, n, a.data(), b.data(), serial.data_mut());
            prop_assert_eq!(first.data(), serial.data());
        }

        /// Parallel SpMM (balanced-nnz partitioning) is bit-deterministic
        /// and agrees with the dense product.
        #[test]
        fn parallel_spmm_is_deterministic(seed in 0u64..50) {
            let nodes = 400usize;
            let edges: Vec<(usize, usize)> = (0..nodes * 8)
                .map(|i| {
                    let s = i as u64 ^ seed;
                    ((s.wrapping_mul(31) % nodes as u64) as usize,
                     (s.wrapping_mul(17) .wrapping_add(5) % nodes as u64) as usize)
                })
                .collect();
            let adj = CsrMatrix::from_edges(nodes, &edges).symmetrize().gcn_normalize();
            let mut rng = rng_from_seed(seed);
            // nnz * cols clears PAR_SPMM_WORK => parallel path on multi-core.
            let x = randn(nodes, 32, 0.0, 1.0, &mut rng);
            let first = adj.spmm(&x);
            let second = adj.spmm(&x);
            prop_assert_eq!(first.data(), second.data());
            let dense = adj.to_dense().matmul(&x);
            prop_assert!(close(&first, &dense, 1e-4));
            // spmm_transpose routes through the CSR transpose on this size;
            // it must agree with the dense computation too.
            let t = adj.spmm_transpose(&x);
            let dense_t = adj.to_dense().transpose().matmul(&x);
            prop_assert!(close(&t, &dense_t, 1e-4));
        }

        #[test]
        fn backward_of_linear_map_matches_closed_form(
            x in matrix_strategy(3, 4),
            w in matrix_strategy(4, 2),
        ) {
            // loss = mean(X W)  =>  dX = (1/(3*2)) * ones(3,2) W^T
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let y = tape.matmul(xv, wv);
            let loss = tape.mean_all(y);
            let grads = tape.backward(loss);
            let expected = Matrix::filled(3, 2, 1.0 / 6.0).matmul(&w.transpose());
            prop_assert!(grads.get(xv).unwrap().approx_eq(&expected, 1e-4));
        }
    }
}
