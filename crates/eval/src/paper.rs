//! Reference values reported by the paper, used by EXPERIMENTS.md and by the
//! regenerator binaries to print the paper-vs-measured comparison.
//!
//! Only the headline Table II cells for the GCond method are recorded here;
//! the comparison of interest is the *shape* (ASR close to 1.0, CTA close to
//! C-CTA), not the absolute numbers, because the datasets are synthetic
//! stand-ins (see DESIGN.md).
//!
//! **ASR protocol note.** This reproduction estimates ASR/C-ASR on a candidate
//! pool that *excludes* test nodes whose true label already equals the target
//! class (a model predicting the target class for a genuine target-class node
//! is not an attack success).  The paper samples the whole test split, so its
//! ASR and especially C-ASR columns include a `1/C`-sized fraction of such
//! free "successes"; measured C-ASR here therefore sits slightly *below* the
//! quoted reference values, and ASR differences of up to roughly one
//! target-class fraction are protocol, not reproduction, error.

use bgc_graph::DatasetKind;

/// A Table II reference cell (GCond column of the paper), values in percent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperTable2Cell {
    /// Condensation ratio.
    pub ratio: f32,
    /// Clean-model clean test accuracy.
    pub c_cta: f32,
    /// Backdoored-model clean test accuracy.
    pub cta: f32,
    /// Clean-model attack success rate.
    pub c_asr: f32,
    /// Backdoored-model attack success rate.
    pub asr: f32,
}

/// Paper Table II values for the GCond condensation method.
pub fn table2_gcond_reference(dataset: DatasetKind) -> Vec<PaperTable2Cell> {
    match dataset {
        DatasetKind::Cora => vec![
            PaperTable2Cell {
                ratio: 0.013,
                c_cta: 81.33,
                cta: 81.23,
                c_asr: 11.23,
                asr: 100.0,
            },
            PaperTable2Cell {
                ratio: 0.026,
                c_cta: 81.27,
                cta: 80.67,
                c_asr: 13.42,
                asr: 100.0,
            },
            PaperTable2Cell {
                ratio: 0.052,
                c_cta: 80.53,
                cta: 80.70,
                c_asr: 11.78,
                asr: 100.0,
            },
        ],
        DatasetKind::Citeseer => vec![
            PaperTable2Cell {
                ratio: 0.009,
                c_cta: 71.43,
                cta: 71.57,
                c_asr: 16.65,
                asr: 100.0,
            },
            PaperTable2Cell {
                ratio: 0.018,
                c_cta: 72.03,
                cta: 71.03,
                c_asr: 14.64,
                asr: 100.0,
            },
            PaperTable2Cell {
                ratio: 0.036,
                c_cta: 71.20,
                cta: 70.60,
                c_asr: 16.18,
                asr: 100.0,
            },
        ],
        DatasetKind::Flickr => vec![
            PaperTable2Cell {
                ratio: 0.001,
                c_cta: 46.85,
                cta: 46.54,
                c_asr: 2.18,
                asr: 99.83,
            },
            PaperTable2Cell {
                ratio: 0.005,
                c_cta: 46.62,
                cta: 47.15,
                c_asr: 2.25,
                asr: 99.97,
            },
            PaperTable2Cell {
                ratio: 0.01,
                c_cta: 46.91,
                cta: 46.84,
                c_asr: 2.21,
                asr: 99.77,
            },
        ],
        DatasetKind::Reddit => vec![
            PaperTable2Cell {
                ratio: 0.0005,
                c_cta: 88.86,
                cta: 88.50,
                c_asr: 0.45,
                asr: 99.84,
            },
            PaperTable2Cell {
                ratio: 0.001,
                c_cta: 89.20,
                cta: 90.37,
                c_asr: 0.47,
                asr: 99.99,
            },
            PaperTable2Cell {
                ratio: 0.002,
                c_cta: 90.10,
                cta: 90.40,
                c_asr: 0.45,
                asr: 99.06,
            },
        ],
        // The arxiv-like graph is not part of the paper's Table II.
        DatasetKind::Arxiv => Vec::new(),
    }
}

/// The qualitative claims every reproduction run is checked against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperClaim {
    /// The backdoored model's ASR approaches 1.0 in every setting (Table II).
    HighAsr,
    /// The backdoored model's CTA stays close to the clean model's CTA.
    UtilityPreserved,
    /// The clean model's ASR stays near chance level.
    CleanModelUnaffected,
    /// Naive direct poisoning of the condensed graph hurts CTA far more than
    /// BGC (Figure 1).
    NaivePoisonHurtsUtility,
    /// The defenses trade CTA for limited ASR reduction (Table IV).
    DefenseTradeOff,
}

impl PaperClaim {
    /// Human-readable statement of the claim.
    pub fn statement(&self) -> &'static str {
        match self {
            PaperClaim::HighAsr => "BGC reaches an attack success rate close to 1.0",
            PaperClaim::UtilityPreserved => "the backdoored CTA stays close to the clean CTA",
            PaperClaim::CleanModelUnaffected => "the clean model's ASR stays near chance",
            PaperClaim::NaivePoisonHurtsUtility => {
                "naive poisoning of the condensed graph degrades CTA far more than BGC"
            }
            PaperClaim::DefenseTradeOff => {
                "Prune/Randsmooth trade large CTA losses for limited ASR reduction"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_cells_match_the_paper_ratios() {
        for dataset in DatasetKind::all() {
            let cells = table2_gcond_reference(dataset);
            assert_eq!(cells.len(), 3);
            let ratios: Vec<f32> = cells.iter().map(|c| c.ratio).collect();
            assert_eq!(ratios, dataset.paper_condensation_ratios().to_vec());
            // Headline claim encoded in the reference values.
            assert!(cells.iter().all(|c| c.asr > 99.0));
            assert!(cells.iter().all(|c| (c.c_cta - c.cta).abs() < 2.0));
        }
    }

    #[test]
    fn claims_have_statements() {
        assert!(PaperClaim::HighAsr.statement().contains("1.0"));
        assert!(PaperClaim::DefenseTradeOff.statement().contains("ASR"));
    }
}
