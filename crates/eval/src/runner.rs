//! The experiment-grid engine.
//!
//! Every table/figure cell of the paper's evaluation is a [`CellKey`]: the
//! full coordinates of one repetition of one experiment (scale, dataset,
//! attack, condensation method, ratio, repetition, evaluation mode, config
//! overrides).  The [`Runner`] executes cells:
//!
//! * **in parallel** on the workspace thread pool — every cell derives its
//!   RNG streams from its own key, so parallel results are bit-identical to
//!   serial execution;
//! * **sharing expensive stages** — the attack outcome and the clean
//!   condensed reference per (dataset, method, ratio, seed, attack config)
//!   are memoized in a concurrent in-memory cache, so overlapping
//!   tables/figures (e.g. the GCond/Cora/BGC cell appearing in Table II,
//!   Fig. 1, Fig. 4 and Table VI) pay for each attack once;
//! * **resumably** — per-cell results are persisted as JSON under
//!   `target/experiments/<scale>/cells/` and re-runs are served from disk;
//! * **openly** — attacks, condensation methods and defenses are resolved by
//!   name from their registries and driven through trait objects, so a newly
//!   registered attack/method/defense runs through the grid without touching
//!   this crate.
//!
//! The regenerators in [`crate::experiments`] declare their cell lists with
//! [`Runner::group`] and render from [`Runner::metrics`]; they never loop
//! over attacks inline.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;
use serde::Serialize;

use bgc_condense::MethodId;
use bgc_core::{
    asr_sample_nodes, attach_for_evaluation, directed_attack, evaluate_backdoor, AttackArtifacts,
    AttackId, BgcConfig, BgcError, EvaluationOptions, GeneratorKind, TriggerProvider, VictimSpec,
};
use bgc_defense::{resolve_defense, Defense, DefenseId};
use bgc_graph::{CondensedGraph, DatasetKind, Graph, PoisonBudget};
use bgc_nn::{
    accuracy, attack_success_rate, train_on_condensed, AdjacencyRef, GnnArchitecture, TrainingPlan,
};
use bgc_tensor::init::rng_from_seed;
use bgc_tensor::Matrix;

use crate::protocol::{
    attack_stage, clean_stage, lookup_attack, lookup_method, AttackKind, RunMetrics, RunSpec,
};
use crate::scale::ExperimentScale;

/// Base seed of the experiment grid; repetition `i` of a cell runs with
/// `DEFAULT_BASE_SEED + i` (matching [`RunSpec::bgc`]).
pub const DEFAULT_BASE_SEED: u64 = 17;

/// Version tag of the on-disk cell format; bump when [`CellResult`] or the
/// evaluation protocol changes so stale caches are recomputed.  v2: defended
/// cells train their victim from the shared defended init stream regardless
/// of the defense kind.
const CELL_FILE_VERSION: u64 = 2;

/// How the victim is evaluated in a cell: undefended, or through a named
/// defense from the defense registry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EvalKind {
    /// Undefended victim: CTA/ASR plus the clean-reference C-CTA/C-ASR.
    Standard,
    /// Victim trained and evaluated through a registered defense (Table IV).
    Defended(DefenseId),
}

impl EvalKind {
    /// The built-in Prune defense (Table IV).
    pub fn prune() -> Self {
        EvalKind::Defended(DefenseId::from("prune"))
    }

    /// The built-in Randsmooth defense (Table IV).
    pub fn randsmooth() -> Self {
        EvalKind::Defended(DefenseId::from("randsmooth"))
    }

    /// Stable name used in tables and the CLI.
    pub fn name(&self) -> &str {
        match self {
            EvalKind::Standard => "standard",
            EvalKind::Defended(id) => id.as_str(),
        }
    }

    /// Collision-free encoding used inside canonical cache keys: a defense
    /// that somehow carries the reserved name `standard` must never share a
    /// cache identity with the undefended mode.
    fn canon_tag(&self) -> String {
        match self {
            EvalKind::Standard => "standard".to_string(),
            EvalKind::Defended(id) => format!("defended:{}", id),
        }
    }

    /// Re-canonicalizes a defended mode's spelling against the registry
    /// (no-op for `Standard` and unregistered names).
    fn canonicalized(&self) -> EvalKind {
        match self {
            EvalKind::Standard => EvalKind::Standard,
            EvalKind::Defended(id) => EvalKind::Defended(DefenseId::from(id.as_str())),
        }
    }
}

impl fmt::Display for EvalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalKind {
    type Err = std::convert::Infallible;

    /// `"standard"` parses to the undefended mode; anything else names a
    /// defense (resolved against the registry at run time).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("standard") {
            Ok(EvalKind::Standard)
        } else {
            Ok(EvalKind::Defended(DefenseId::from(s)))
        }
    }
}

/// A poisoning-budget override, hashable (the ratio is stored as f32 bits).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BudgetOverride {
    /// Fraction of the training nodes (stored as `f32::to_bits`).
    RatioBits(u32),
    /// Absolute number of nodes.
    Count(usize),
}

impl From<PoisonBudget> for BudgetOverride {
    fn from(budget: PoisonBudget) -> Self {
        match budget {
            PoisonBudget::Ratio(r) => BudgetOverride::RatioBits(r.to_bits()),
            PoisonBudget::Count(c) => BudgetOverride::Count(c),
        }
    }
}

impl BudgetOverride {
    /// Converts back to the graph crate's budget type.
    pub fn to_budget(self) -> PoisonBudget {
        match self {
            BudgetOverride::RatioBits(bits) => PoisonBudget::Ratio(f32::from_bits(bits)),
            BudgetOverride::Count(c) => PoisonBudget::Count(c),
        }
    }

    fn canon(&self) -> String {
        match self {
            BudgetOverride::RatioBits(bits) => format!("ratio{:08x}", bits),
            BudgetOverride::Count(c) => format!("count{}", c),
        }
    }
}

/// Deviations of a cell from the scale's baseline configuration — the
/// declarative equivalent of the `customize` closures the ablation tables
/// used to pass to `run_spec_with`.
///
/// `None` means "the scale's default"; [`Runner::group`] normalizes overrides
/// that equal the baseline back to `None`, so semantically identical cells
/// from different tables share one cache entry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct CellOverrides {
    /// Trigger-generator encoder (Table V).
    pub generator: Option<GeneratorKind>,
    /// Trigger size (Figure 8).
    pub trigger_size: Option<usize>,
    /// Condensation epochs (Figure 6).
    pub outer_epochs: Option<usize>,
    /// Poisoning budget (Table VII).
    pub poison_budget: Option<BudgetOverride>,
    /// Directed attack from this source class; also restricts the ASR
    /// estimate to that class (Table VI).
    pub source_class: Option<usize>,
    /// Victim architecture (Table III).
    pub architecture: Option<GnnArchitecture>,
    /// Victim layer count (Table VIII).
    pub num_layers: Option<usize>,
    /// Training plan of full-graph stages (selector, reference models, ASR
    /// computation-graph extraction).  `None` means the scale's per-dataset
    /// default (sampled on the large tier's big graphs, full batch
    /// elsewhere).
    pub plan: Option<TrainingPlan>,
}

impl CellOverrides {
    /// Applies the overrides to a cell's inputs.
    pub fn apply(
        &self,
        config: &mut BgcConfig,
        victim: &mut VictimSpec,
        options: &mut EvaluationOptions,
    ) {
        if let Some(generator) = self.generator {
            config.generator = generator;
        }
        if let Some(trigger_size) = self.trigger_size {
            config.trigger_size = trigger_size;
        }
        if let Some(epochs) = self.outer_epochs {
            config.condensation.outer_epochs = epochs;
        }
        if let Some(budget) = self.poison_budget {
            config.poison_budget = budget.to_budget();
        }
        if let Some(source) = self.source_class {
            *config = directed_attack(config, source);
            options.asr_source_class = Some(source);
        }
        if let Some(architecture) = self.architecture {
            victim.architecture = architecture;
        }
        if let Some(layers) = self.num_layers {
            victim.num_layers = layers;
        }
        if let Some(plan) = &self.plan {
            config.training_plan = plan.clone();
            victim.plan = plan.clone();
            options.plan = plan.clone();
        }
    }

    /// Fixed-order canonical encoding (part of [`CellKey::canon`]).
    fn canon(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or_else(|| "-".to_string(), T::to_string)
        }
        let mut canon = format!(
            "gen={}|tsz={}|ep={}|budget={}|src={}|arch={}|layers={}",
            self.generator.map_or("-", |g| g.name()),
            opt(&self.trigger_size),
            opt(&self.outer_epochs),
            self.poison_budget
                .map_or_else(|| "-".to_string(), |b| b.canon()),
            opt(&self.source_class),
            self.architecture.map_or("-", |a| a.name()),
            opt(&self.num_layers),
        );
        // Appended only when set: pre-plan cell canons (and their on-disk
        // file names) must stay byte-identical.
        if let Some(plan) = &self.plan {
            canon.push_str(&format!("|plan={}", plan));
        }
        canon
    }

    /// The subset of the overrides that changes the attack stage (everything
    /// except the victim-side fields).
    fn attack_canon(&self) -> String {
        let mut canon = format!(
            "gen={}|tsz={}|ep={}|budget={}|src={}",
            self.generator.map_or("-", |g| g.name()),
            self.trigger_size
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.outer_epochs
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.poison_budget
                .map_or_else(|| "-".to_string(), |b| b.canon()),
            self.source_class
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
        if let Some(plan) = &self.plan {
            canon.push_str(&format!("|plan={}", plan));
        }
        canon
    }
}

/// Full coordinates of one experiment cell (one repetition of one
/// configuration).  Hashable and canonically encodable: the key *is* the
/// cache identity, in memory and on disk, and every RNG stream of the cell
/// derives from [`CellKey::seed`], so results are independent of execution
/// order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack (registry name).
    pub method: MethodId,
    /// Attack to run (registry name).
    pub attack: AttackId,
    /// Condensation ratio as `f32::to_bits` (hashable, exact).
    pub ratio_bits: u32,
    /// Base seed of the grid.
    pub base_seed: u64,
    /// Repetition index; the cell seed is `base_seed + rep`.
    pub rep: usize,
    /// Victim evaluation mode.
    pub eval: EvalKind,
    /// Deviations from the scale's baseline configuration.
    pub overrides: CellOverrides,
}

impl CellKey {
    /// The condensation ratio.
    pub fn ratio(&self) -> f32 {
        f32::from_bits(self.ratio_bits)
    }

    /// The seed every RNG stream of this cell derives from.
    pub fn seed(&self) -> u64 {
        self.base_seed + self.rep as u64
    }

    /// Canonical, stable, collision-checked encoding of the key.  Used as
    /// the in-memory stage-key prefix and (hashed) as the on-disk file name;
    /// the full string is stored inside the cell file and verified on load.
    pub fn canon(&self) -> String {
        format!(
            "v{}|{}|{}|{}|{}|r={:08x}|seed={}|rep={}|eval={}|{}",
            CELL_FILE_VERSION,
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.attack,
            self.ratio_bits,
            self.base_seed,
            self.rep,
            self.eval.canon_tag(),
            self.overrides.canon(),
        )
    }

    /// Cache key of the clean-reference condensation stage: only the fields
    /// that influence clean condensation (no attack, victim or eval fields).
    fn clean_stage_key(&self) -> String {
        format!(
            "clean|{}|{}|{}|r={:08x}|seed={}|ep={}",
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.ratio_bits,
            self.seed(),
            self.overrides
                .outer_epochs
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        )
    }

    /// Cache key of the attack stage: everything that influences the attack
    /// outcome, excluding the victim and eval-mode fields, so Table III's six
    /// victims (for example) share one attack run.
    fn attack_stage_key(&self) -> String {
        format!(
            "attack|{}|{}|{}|{}|r={:08x}|seed={}|{}",
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.attack,
            self.ratio_bits,
            self.seed(),
            self.overrides.attack_canon(),
        )
    }

    /// On-disk file name: 64-bit FNV-1a of the canonical encoding.
    fn file_name(&self) -> String {
        format!("{:016x}.json", fnv1a64(self.canon().as_bytes()))
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Raw measurements of one cell.  For [`EvalKind::Standard`] cells the
/// `c_*` fields hold the clean-reference (C-CTA/C-ASR) columns; defense
/// cells skip the reference victim and report zeros there.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CellResult {
    /// Clean-reference victim CTA (C-CTA).
    pub c_cta: f32,
    /// Backdoored/defended victim CTA.
    pub cta: f32,
    /// Clean-reference victim ASR (C-ASR).
    pub c_asr: f32,
    /// Backdoored/defended victim ASR.
    pub asr: f32,
    /// Number of test nodes in the ASR estimate.
    pub asr_nodes: usize,
    /// Whether the condensation method reported out-of-memory.
    pub oom: bool,
}

impl CellResult {
    fn oom() -> Self {
        Self {
            c_cta: 0.0,
            cta: 0.0,
            c_asr: 0.0,
            asr: 0.0,
            asr_nodes: 0,
            oom: true,
        }
    }
}

/// All repetitions of one experiment configuration — what one table row or
/// figure point aggregates over.
#[derive(Clone, Debug)]
pub struct CellGroup {
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack.
    pub method: MethodId,
    /// Attack being evaluated.
    pub attack: AttackId,
    /// Condensation ratio.
    pub ratio: f32,
    /// Victim evaluation mode.
    pub eval: EvalKind,
    /// One key per repetition.
    pub keys: Vec<CellKey>,
}

/// A memoized computation stage shared between cells.  The first cell to
/// need a stage computes it inside the slot's `OnceLock`; concurrent cells
/// needing the same stage block on the lock and share the value.
struct StageCache<T> {
    slots: Mutex<HashMap<String, Arc<OnceLock<T>>>>,
    hits: AtomicUsize,
    computed: AtomicUsize,
}

impl<T: Clone> StageCache<T> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            computed: AtomicUsize::new(0),
        }
    }

    fn get_or_compute(&self, key: String, compute: impl FnOnce() -> T) -> T {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            slots.entry(key).or_default().clone()
        };
        let mut ran = false;
        let value = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        if ran {
            self.computed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }
}

/// Cache-hit and execution counters of a [`Runner`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RunnerStats {
    /// Cells computed from scratch in this process.
    pub cells_computed: usize,
    /// Cells served from the in-memory result map (overlap between reports).
    pub cell_memory_hits: usize,
    /// Cells served from the on-disk cache (resumed runs).
    pub cell_disk_hits: usize,
    /// Attack stages computed from scratch.
    pub attack_stages_computed: usize,
    /// Attack stages shared between cells (e.g. across victims/defenses).
    pub attack_stage_hits: usize,
    /// Clean condensations computed from scratch.
    pub clean_stages_computed: usize,
    /// Clean condensations shared between cells (e.g. across attacks).
    pub clean_stage_hits: usize,
}

impl RunnerStats {
    /// Total hits across every cache layer.
    pub fn total_hits(&self) -> usize {
        self.cell_memory_hits + self.cell_disk_hits + self.attack_stage_hits + self.clean_stage_hits
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "cells: {} computed, {} memory hits, {} disk hits | attack stages: {} computed, {} shared | clean stages: {} computed, {} shared",
            self.cells_computed,
            self.cell_memory_hits,
            self.cell_disk_hits,
            self.attack_stages_computed,
            self.attack_stage_hits,
            self.clean_stages_computed,
            self.clean_stage_hits,
        )
    }
}

type StageResult<T> = Result<T, BgcError>;

/// The experiment-grid engine.  See the module docs for the execution model.
pub struct Runner {
    scale: ExperimentScale,
    base_seed: u64,
    parallel: bool,
    cache_dir: Option<PathBuf>,
    results: Mutex<HashMap<CellKey, CellResult>>,
    clean_cache: StageCache<StageResult<Arc<CondensedGraph>>>,
    attack_cache: StageCache<StageResult<AttackArtifacts>>,
    /// Generated datasets, shared across cells: `(dataset, seed)` fully
    /// determines the graph, so overlapping cells reuse one instance
    /// instead of re-generating it.
    graphs: StageCache<Arc<Graph>>,
    cells_computed: AtomicUsize,
    cell_memory_hits: AtomicUsize,
    cell_disk_hits: AtomicUsize,
}

impl Runner {
    /// A runner with the default on-disk cache under
    /// `target/experiments/<scale>/cells/`.
    pub fn new(scale: ExperimentScale) -> Self {
        let dir = PathBuf::from("target/experiments")
            .join(scale.name())
            .join("cells");
        Self::with_cache_dir(scale, Some(dir))
    }

    /// A runner without on-disk persistence (unit tests, library use).
    pub fn in_memory(scale: ExperimentScale) -> Self {
        Self::with_cache_dir(scale, None)
    }

    /// A runner with an explicit cell-cache directory (`None` disables
    /// persistence).
    pub fn with_cache_dir(scale: ExperimentScale, cache_dir: Option<PathBuf>) -> Self {
        Self {
            scale,
            base_seed: DEFAULT_BASE_SEED,
            parallel: true,
            cache_dir,
            results: Mutex::new(HashMap::new()),
            clean_cache: StageCache::new(),
            attack_cache: StageCache::new(),
            graphs: StageCache::new(),
            cells_computed: AtomicUsize::new(0),
            cell_memory_hits: AtomicUsize::new(0),
            cell_disk_hits: AtomicUsize::new(0),
        }
    }

    /// Disables the thread pool: cells run serially on the calling thread
    /// (results are bit-identical either way; this exists for the
    /// determinism test and for debugging).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Overrides the base seed of the grid (repetition `i` of a cell runs
    /// with `base_seed + i`).
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The runner's experiment scale.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The base seed of the grid.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Declares one experiment configuration as a group of per-repetition
    /// cells.  Overrides equal to the scale's baseline are normalized to
    /// `None` so identical cells from different tables share cache entries.
    pub fn group(
        &self,
        dataset: DatasetKind,
        method: impl Into<MethodId>,
        attack: impl Into<AttackId>,
        ratio: f32,
        eval: EvalKind,
        overrides: CellOverrides,
    ) -> CellGroup {
        self.group_seeded(
            dataset,
            method.into(),
            attack.into(),
            ratio,
            eval,
            overrides,
            self.base_seed,
        )
    }

    /// [`Runner::group`] with an explicit base seed (used by the experiment
    /// builder, whose specs carry their own seed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn group_seeded(
        &self,
        dataset: DatasetKind,
        method: MethodId,
        attack: AttackId,
        ratio: f32,
        eval: EvalKind,
        overrides: CellOverrides,
        base_seed: u64,
    ) -> CellGroup {
        // Re-canonicalize the spellings against the registries at lowering
        // time: ids created before their entry was registered (or via
        // `::new`) must not occupy a second cache identity.
        let method = MethodId::from(method.as_str());
        let attack = AttackId::from(attack.as_str());
        let eval = eval.canonicalized();
        let overrides = self.normalize(dataset, ratio, overrides);
        let keys = (0..self.scale.repetitions())
            .map(|rep| CellKey {
                scale: self.scale,
                dataset,
                method: method.clone(),
                attack: attack.clone(),
                ratio_bits: ratio.to_bits(),
                base_seed,
                rep,
                eval: eval.clone(),
                overrides: overrides.clone(),
            })
            .collect();
        CellGroup {
            dataset,
            method,
            attack,
            ratio,
            eval,
            keys,
        }
    }

    /// The default BGC group of Table II: standard evaluation, no overrides.
    pub fn bgc_group(
        &self,
        dataset: DatasetKind,
        method: impl Into<MethodId>,
        ratio: f32,
    ) -> CellGroup {
        self.group(
            dataset,
            method,
            AttackKind::Bgc,
            ratio,
            EvalKind::Standard,
            CellOverrides::default(),
        )
    }

    fn normalize(
        &self,
        dataset: DatasetKind,
        ratio: f32,
        mut overrides: CellOverrides,
    ) -> CellOverrides {
        let baseline = self.scale.bgc_config(dataset, ratio, self.base_seed);
        let victim = self.scale.victim_spec();
        if overrides.generator == Some(baseline.generator) {
            overrides.generator = None;
        }
        if overrides.trigger_size == Some(baseline.trigger_size) {
            overrides.trigger_size = None;
        }
        if overrides.outer_epochs == Some(baseline.condensation.outer_epochs) {
            overrides.outer_epochs = None;
        }
        if overrides.poison_budget.map(BudgetOverride::to_budget) == Some(baseline.poison_budget) {
            overrides.poison_budget = None;
        }
        if overrides.architecture == Some(victim.architecture) {
            overrides.architecture = None;
        }
        if overrides.num_layers == Some(victim.num_layers) {
            overrides.num_layers = None;
        }
        if overrides.plan.as_ref() == Some(&baseline.training_plan) {
            overrides.plan = None;
        }
        overrides
    }

    /// Executes every not-yet-known cell of `keys` (deduplicated), in
    /// parallel unless [`Runner::serial`].  Completed results land in the
    /// in-memory map (and on disk when persistence is enabled); read them
    /// back with [`Runner::result`] or [`Runner::metrics`].  The first cell
    /// failure (unknown attack/method/defense, non-OOM condensation error)
    /// aborts with a typed error; OOM cells are recorded as OOM results.
    pub fn run_cells(&self, keys: &[CellKey]) -> Result<(), BgcError> {
        let mut pending = Vec::new();
        let mut seen = HashSet::new();
        {
            let results = self.results.lock().unwrap();
            for key in keys {
                if !seen.insert(key.clone()) {
                    continue;
                }
                if results.contains_key(key) {
                    self.cell_memory_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    pending.push(key.clone());
                }
            }
        }
        let errors: Mutex<Vec<BgcError>> = Mutex::new(Vec::new());
        let execute = |key: CellKey| {
            let outcome = match self.load_cell(&key) {
                Some(result) => {
                    self.cell_disk_hits.fetch_add(1, Ordering::Relaxed);
                    Ok(result)
                }
                None => self.compute_cell(&key).inspect(|result| {
                    self.cells_computed.fetch_add(1, Ordering::Relaxed);
                    self.persist_cell(&key, result);
                }),
            };
            match outcome {
                Ok(result) => {
                    self.results.lock().unwrap().insert(key, result);
                }
                Err(err) => errors.lock().unwrap().push(err),
            }
        };
        if self.parallel && pending.len() > 1 {
            pending.into_par_iter().for_each(execute);
        } else {
            for key in pending {
                execute(key);
            }
        }
        match errors.into_inner().unwrap().into_iter().next() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Runs every cell of the given groups (one call per report keeps the
    /// whole report's grid in flight at once).
    pub fn run_groups(&self, groups: &[&CellGroup]) -> Result<(), BgcError> {
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.iter().cloned()).collect();
        self.run_cells(&keys)
    }

    /// The completed result of a cell; [`BgcError::CellNotExecuted`] if the
    /// cell was never run.
    pub fn result(&self, key: &CellKey) -> Result<CellResult, BgcError> {
        self.results
            .lock()
            .unwrap()
            .get(key)
            .copied()
            .ok_or_else(|| BgcError::CellNotExecuted { canon: key.canon() })
    }

    /// Aggregates a group's repetitions into a Table II-style row (runs any
    /// missing cells first).  A group with an OOM repetition reports the
    /// paper's `OOM` row.
    pub fn metrics(&self, group: &CellGroup) -> Result<RunMetrics, BgcError> {
        // Read-back path: only submit cells that were never executed, so
        // rendering a report after its `run_groups` wave does not inflate
        // the memory-hit counter (that stat measures overlap between
        // reports, not result lookups).
        let missing: Vec<CellKey> = {
            let results = self.results.lock().unwrap();
            group
                .keys
                .iter()
                .filter(|k| !results.contains_key(*k))
                .cloned()
                .collect()
        };
        if !missing.is_empty() {
            self.run_cells(&missing)?;
        }
        let results: Vec<CellResult> = group
            .keys
            .iter()
            .map(|k| self.result(k))
            .collect::<Result<_, _>>()?;
        if results.iter().any(|r| r.oom) {
            return Ok(RunMetrics::oom(&RunSpec {
                dataset: group.dataset,
                method: group.method.clone(),
                ratio: group.ratio,
                attack: group.attack.clone(),
                scale: self.scale,
                seed: self.base_seed,
            }));
        }
        let column = |f: fn(&CellResult) -> f32| -> Vec<f32> { results.iter().map(f).collect() };
        Ok(RunMetrics::from_repetitions(
            group.dataset.name(),
            group.method.as_str(),
            group.attack.as_str(),
            group.ratio,
            &column(|r| r.c_cta),
            &column(|r| r.cta),
            &column(|r| r.c_asr),
            &column(|r| r.asr),
        ))
    }

    /// Snapshot of the cache/execution counters.
    pub fn stats(&self) -> RunnerStats {
        RunnerStats {
            cells_computed: self.cells_computed.load(Ordering::Relaxed),
            cell_memory_hits: self.cell_memory_hits.load(Ordering::Relaxed),
            cell_disk_hits: self.cell_disk_hits.load(Ordering::Relaxed),
            attack_stages_computed: self.attack_cache.computed.load(Ordering::Relaxed),
            attack_stage_hits: self.attack_cache.hits.load(Ordering::Relaxed),
            clean_stages_computed: self.clean_cache.computed.load(Ordering::Relaxed),
            clean_stage_hits: self.clean_cache.hits.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Cell execution
    // ------------------------------------------------------------------

    fn compute_cell(&self, key: &CellKey) -> Result<CellResult, BgcError> {
        let attack = lookup_attack(&key.attack)?;
        let method = lookup_method(&key.method)?;
        let defense = match &key.eval {
            EvalKind::Standard => None,
            EvalKind::Defended(id) => Some(
                resolve_defense(id.as_str())
                    .ok_or_else(|| BgcError::UnknownDefense(id.to_string()))?,
            ),
        };

        let seed = key.seed();
        let graph = self
            .graphs
            .get_or_compute(format!("{}|{}", key.dataset.name(), seed), || {
                Arc::new(self.scale.load(key.dataset, seed))
            });
        let mut config = self.scale.bgc_config(key.dataset, key.ratio(), seed);
        let mut victim = self.scale.victim_spec_for(key.dataset);
        let mut options = self.scale.evaluation_options_for(key.dataset, seed);
        key.overrides.apply(&mut config, &mut victim, &mut options);

        // Clean reference condensation — needed by the Standard evaluation
        // (C-CTA/C-ASR columns) and by attacks that inject into the clean
        // condensed graph (Naive Poison); defense cells of other attacks
        // skip it.
        let needs_clean = key.eval == EvalKind::Standard || attack.needs_clean_reference();
        let clean = if needs_clean {
            let outcome = self.clean_cache.get_or_compute(key.clean_stage_key(), || {
                clean_stage(&graph, method.as_ref(), &config).map(Arc::new)
            });
            match outcome {
                Ok(clean) => Some(clean),
                Err(err) if err.is_oom() => return Ok(CellResult::oom()),
                Err(err) => return Err(err),
            }
        } else {
            None
        };

        let artifacts = {
            let outcome = self
                .attack_cache
                .get_or_compute(key.attack_stage_key(), || {
                    attack_stage(
                        attack.as_ref(),
                        method.as_ref(),
                        &graph,
                        &config,
                        clean.as_deref(),
                    )
                });
            match outcome {
                Ok(artifacts) => artifacts,
                Err(err) if err.is_oom() => return Ok(CellResult::oom()),
                Err(err) => return Err(err),
            }
        };

        match defense {
            None => {
                let backdoored = evaluate_backdoor(
                    &graph,
                    &artifacts.condensed,
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                let clean = clean.expect("standard cells always condense the clean reference");
                let reference = evaluate_backdoor(
                    &graph,
                    &clean,
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                Ok(CellResult {
                    c_cta: reference.cta,
                    cta: backdoored.cta,
                    c_asr: reference.asr,
                    asr: backdoored.asr,
                    asr_nodes: backdoored.asr_nodes,
                    oom: false,
                })
            }
            Some(defense) => {
                let (cta, asr, asr_nodes) = defended_evaluation(
                    &graph,
                    &artifacts.condensed,
                    defense.as_ref(),
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                Ok(CellResult {
                    c_cta: 0.0,
                    cta,
                    c_asr: 0.0,
                    asr,
                    asr_nodes,
                    oom: false,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // On-disk cell cache
    // ------------------------------------------------------------------

    fn load_cell(&self, key: &CellKey) -> Option<CellResult> {
        let dir = self.cache_dir.as_ref()?;
        let text = fs::read_to_string(dir.join(key.file_name())).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        if value.get("version")?.as_u64()? != CELL_FILE_VERSION {
            return None;
        }
        // The file name is a 64-bit hash; the stored canonical key guards
        // against collisions and stale formats.
        if value.get("canon")?.as_str()? != key.canon() {
            return None;
        }
        let result = value.get("result")?;
        let field = |name: &str| -> Option<f32> { Some(result.get(name)?.as_f64()? as f32) };
        Some(CellResult {
            c_cta: field("c_cta")?,
            cta: field("cta")?,
            c_asr: field("c_asr")?,
            asr: field("asr")?,
            asr_nodes: result.get("asr_nodes")?.as_u64()? as usize,
            oom: result.get("oom")?.as_bool()?,
        })
    }

    fn persist_cell(&self, key: &CellKey, result: &CellResult) {
        let Some(dir) = self.cache_dir.as_ref() else {
            return;
        };
        if let Err(err) = fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {}", dir.display(), err);
            return;
        }
        let file = CellFile {
            version: CELL_FILE_VERSION,
            canon: key.canon(),
            ratio: key.ratio(),
            result: *result,
        };
        let path = dir.join(key.file_name());
        match serde_json::to_string_pretty(&file) {
            Ok(json) => {
                if let Err(err) = fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {}", path.display(), err);
                }
            }
            Err(err) => eprintln!("warning: could not serialize cell: {}", err),
        }
    }
}

/// On-disk representation of one completed cell.
#[derive(Serialize)]
struct CellFile {
    version: u64,
    canon: String,
    ratio: f32,
    result: CellResult,
}

/// CTA/ASR of a victim evaluated through a [`Defense`] (Table IV):
///
/// 1. the condensed graph is passed through [`Defense::sanitize`]
///    (dataset-level defenses prune/transform it; model-level defenses leave
///    it alone);
/// 2. the victim trains on the sanitized graph;
/// 3. every prediction — clean test nodes and triggered nodes alike — goes
///    through [`Defense::predict`] when the defense overrides inference
///    (randomized smoothing), and the plain forward pass otherwise.
///
/// The victim-init RNG and the ASR node sample come from independent
/// streams, and the sample is the same one `evaluate_backdoor` uses, so
/// defended and undefended rows are measured on identical node sets.
fn defended_evaluation(
    graph: &Graph,
    condensed: &CondensedGraph,
    defense: &dyn Defense,
    provider: &dyn TriggerProvider,
    config: &BgcConfig,
    victim: &VictimSpec,
    options: &EvaluationOptions,
) -> (f32, f32, usize) {
    let sanitized = defense.sanitize(condensed);
    let mut init_rng = rng_from_seed(options.seed ^ 0x5107);
    let mut model = victim.architecture.build(
        graph.num_features(),
        victim.hidden_dim,
        graph.num_classes,
        victim.num_layers,
        &mut init_rng,
    );
    train_on_condensed(model.as_mut(), &sanitized, &victim.train);
    let predict = |adj: &AdjacencyRef, features: &Matrix| -> Vec<usize> {
        defense
            .predict(model.as_ref(), adj, features, graph.num_classes)
            .unwrap_or_else(|| model.predict(adj, features))
    };

    let full_adj = AdjacencyRef::from_graph(graph);
    let preds = predict(&full_adj, &graph.features);
    let test_preds: Vec<usize> = graph.split.test.iter().map(|&i| preds[i]).collect();
    let test_labels = graph.labels_of(&graph.split.test);
    let cta = accuracy(&test_preds, &test_labels);

    let sample = asr_sample_nodes(graph, options, config.target_class);
    let mut triggered = Vec::with_capacity(sample.len());
    for &node in &sample {
        let attached = attach_for_evaluation(
            graph,
            node,
            provider.trigger_size(),
            config,
            &options.plan,
            options.seed,
        );
        let trigger = provider.trigger_for(&full_adj, &graph.features, node);
        let features = attached.combined_features_plain(&trigger);
        let preds = predict(&attached.adjacency_ref(), &features);
        triggered.push(preds[attached.center]);
    }
    let asr = attack_success_rate(&triggered, config.target_class);
    (cta, asr, sample.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_condense::CondensationKind;

    /// A tiny two-cell grid that shares the clean stage between two attacks.
    fn tiny_groups(runner: &Runner) -> Vec<CellGroup> {
        let overrides = CellOverrides {
            outer_epochs: Some(4),
            ..CellOverrides::default()
        };
        vec![
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                overrides.clone(),
            ),
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::NaivePoison,
                0.026,
                EvalKind::Standard,
                overrides,
            ),
        ]
    }

    #[test]
    fn keys_are_canonical_and_normalized() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        // Overrides equal to the quick baseline collapse to the default key.
        let baseline = runner.scale.bgc_config(DatasetKind::Cora, 0.026, 17);
        let explicit = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                generator: Some(baseline.generator),
                trigger_size: Some(baseline.trigger_size),
                outer_epochs: Some(baseline.condensation.outer_epochs),
                architecture: Some(GnnArchitecture::Gcn),
                num_layers: Some(2),
                ..CellOverrides::default()
            },
        );
        let default = runner.bgc_group(DatasetKind::Cora, CondensationKind::GCond, 0.026);
        assert_eq!(explicit.keys, default.keys);

        // Distinct coordinates produce distinct canonical encodings.
        let other = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                num_layers: Some(3),
                ..CellOverrides::default()
            },
        );
        assert_ne!(default.keys[0].canon(), other.keys[0].canon());
        assert_ne!(default.keys[0].file_name(), other.keys[0].file_name());
        // The victim-side override leaves the attack stage shareable.
        assert_eq!(
            default.keys[0].attack_stage_key(),
            other.keys[0].attack_stage_key()
        );
        assert_eq!(default.keys[0].seed(), 17);
    }

    #[test]
    fn string_spellings_share_keys_with_typed_kinds() {
        // The CLI parses names; the regenerators pass enum kinds — both must
        // produce identical cell keys (one spelling, one cache entry).
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let typed = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        let spelled = runner.group(
            DatasetKind::Cora,
            "gcond",
            "bgc",
            0.026,
            "standard".parse().unwrap(),
            CellOverrides::default(),
        );
        assert_eq!(typed.keys, spelled.keys);
        assert_eq!(EvalKind::prune().name(), "prune");
        assert_eq!("PRUNE".parse::<EvalKind>().unwrap(), EvalKind::prune());
        assert_eq!(
            "randsmooth".parse::<EvalKind>().unwrap(),
            EvalKind::randsmooth()
        );
    }

    #[test]
    fn parallel_and_serial_execution_are_bit_identical() {
        let serial = Runner::in_memory(ExperimentScale::Quick).serial();
        let parallel = Runner::in_memory(ExperimentScale::Quick);
        let groups = tiny_groups(&serial);
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.clone()).collect();
        serial.run_cells(&keys).unwrap();
        parallel.run_cells(&keys).unwrap();
        for key in &keys {
            let a = serial.result(key).unwrap();
            let b = parallel.result(key).unwrap();
            assert_eq!(a.c_cta.to_bits(), b.c_cta.to_bits(), "{}", key.canon());
            assert_eq!(a.cta.to_bits(), b.cta.to_bits(), "{}", key.canon());
            assert_eq!(a.c_asr.to_bits(), b.c_asr.to_bits(), "{}", key.canon());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits(), "{}", key.canon());
            assert_eq!(a.asr_nodes, b.asr_nodes);
        }
        // The two attacks on the same coordinates share one clean
        // condensation in both execution modes.
        assert_eq!(serial.stats().clean_stages_computed, 1);
        assert_eq!(parallel.stats().clean_stages_computed, 1);
        assert!(serial.stats().clean_stage_hits >= 1);
    }

    #[test]
    fn disk_cache_resumes_with_identical_results() {
        let dir = std::env::temp_dir().join(format!("bgc-runner-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let first = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone()));
        let groups = tiny_groups(&first);
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.clone()).collect();
        first.run_cells(&keys).unwrap();
        assert_eq!(first.stats().cells_computed, keys.len());
        assert_eq!(first.stats().cell_disk_hits, 0);

        // A fresh runner (fresh process, conceptually) is served entirely
        // from disk, bit-identically.
        let second = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone()));
        second.run_cells(&keys).unwrap();
        let stats = second.stats();
        assert_eq!(stats.cell_disk_hits, keys.len());
        assert_eq!(stats.cells_computed, 0);
        for key in &keys {
            let a = first.result(key).unwrap();
            let b = second.result(key).unwrap();
            assert_eq!(a.cta.to_bits(), b.cta.to_bits());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits());
            assert_eq!(a.c_cta.to_bits(), b.c_cta.to_bits());
            assert_eq!(a.c_asr.to_bits(), b.c_asr.to_bits());
        }

        // Re-running on the same runner hits the in-memory map.
        second.run_cells(&keys).unwrap();
        assert_eq!(second.stats().cell_memory_hits, keys.len());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_aggregate_and_match_the_protocol_shape() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                outer_epochs: Some(4),
                ..CellOverrides::default()
            },
        );
        let metrics = runner.metrics(&group).unwrap();
        assert_eq!(metrics.dataset, "cora");
        assert_eq!(metrics.method, "GCond-X");
        assert!(!metrics.oom);
        assert!(metrics.cta > 0.0 && metrics.cta <= 1.0);
        // Quick scale has one repetition: the sample std collapses to zero.
        assert_eq!(metrics.asr_std, 0.0);
    }

    #[test]
    fn unknown_registry_names_fail_with_typed_errors() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            "GhostAttack",
            0.026,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        assert!(matches!(
            runner.metrics(&group),
            Err(BgcError::UnknownAttack(name)) if name == "GhostAttack"
        ));
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Defended(DefenseId::new("moat")),
            CellOverrides {
                outer_epochs: Some(2),
                ..CellOverrides::default()
            },
        );
        assert!(matches!(
            runner.metrics(&group),
            Err(BgcError::UnknownDefense(name)) if name == "moat"
        ));
        // An unexecuted cell reads back as a typed error, not a panic.
        let group = runner.bgc_group(DatasetKind::Citeseer, CondensationKind::GCond, 0.018);
        assert!(matches!(
            runner.result(&group.keys[0]),
            Err(BgcError::CellNotExecuted { .. })
        ));
    }

    #[test]
    fn oom_cells_render_as_oom_rows() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Reddit,
            CondensationKind::GcSntk,
            AttackKind::Bgc,
            0.0005,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        // Inject an OOM cell directly (running GC-SNTK to an actual OOM
        // needs a paper-scale Reddit load); `metrics` must aggregate it into
        // the paper's OOM row.
        {
            let mut results = runner.results.lock().unwrap();
            for key in &group.keys {
                results.insert(key.clone(), CellResult::oom());
            }
        }
        let metrics = runner.metrics(&group).unwrap();
        assert!(metrics.oom);
        assert!(metrics.table_row().contains("OOM"));
    }
}
