//! The experiment-grid engine.
//!
//! Every table/figure cell of the paper's evaluation is a [`CellKey`]: the
//! full coordinates of one repetition of one experiment (scale, dataset,
//! attack, condensation method, ratio, repetition, evaluation mode, config
//! overrides).  The [`Runner`] executes cells:
//!
//! * **in parallel** on the workspace thread pool — every cell derives its
//!   RNG streams from its own key, so parallel results are bit-identical to
//!   serial execution;
//! * **sharing expensive stages** — the attack outcome and the clean
//!   condensed reference per (dataset, method, ratio, seed, attack config)
//!   are memoized in a concurrent in-memory cache, so overlapping
//!   tables/figures (e.g. the GCond/Cora/BGC cell appearing in Table II,
//!   Fig. 1, Fig. 4 and Table VI) pay for each attack once;
//! * **resumably** — per-cell results are persisted as JSON under
//!   `target/experiments/<scale>/cells/` (atomic temp-file + rename writes
//!   with a checksum footer; corrupt or stale files are quarantined to
//!   `<name>.corrupt` and recomputed) and re-runs are served from disk;
//! * **fault-tolerantly** — every cell executes behind an unwind boundary,
//!   so a panic becomes a typed [`CellStatus::Panicked`] outcome instead of
//!   a poisoned-mutex cascade; a per-cell deadline ([`Runner::with_cell_timeout`])
//!   cooperatively cancels stuck cells through the `bgc_runtime` checkpoints
//!   in the trainer and condensation loops; transient failures retry
//!   deterministically ([`Runner::with_retries`]); and
//!   [`Runner::keep_going`] completes the rest of the grid around failed
//!   cells, returning a [`GridReport`] that records every per-cell status
//!   rather than the first error;
//! * **openly** — attacks, condensation methods and defenses are resolved by
//!   name from their registries and driven through trait objects, so a newly
//!   registered attack/method/defense runs through the grid without touching
//!   this crate.
//!
//! The regenerators in [`crate::experiments`] declare their cell lists with
//! [`Runner::group`] and render from [`Runner::metrics`]; they never loop
//! over attacks inline.
//!
//! Fault injection for tests and CI goes through [`bgc_runtime::fault`]: the
//! runner arms a [`FaultPlan`] ([`Runner::with_fault_plan`]) and enters it
//! around each cell with the cell's canonical key as context, so the named
//! fault points (`trainer.epoch`, `condense.outer`, `stage.clean`,
//! `stage.attack`, `runner.persist`, `runner.load`) fire deterministically
//! in exactly the targeted cell.

// Deterministic-by-construction collections: every map and set of this
// module keyed by cells or stage keys is a `BTreeMap`/`BTreeSet`, so no
// iteration order in the persist/report path can ever depend on hash-seed
// or insertion order (`bgc-lint` rule `nondet-iteration`).
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

use rayon::prelude::*;
use serde::Serialize;

use bgc_runtime::{fault, relock, CancelToken, CancelUnwind, FaultPlan};
use bgc_store::{KeyBuilder, Store, StoreKey, StoreRole};

use bgc_condense::{CondensationMethod, MethodId};
use bgc_core::{
    asr_sample_nodes, attach_for_evaluation, directed_attack, evaluate_backdoor, Attack,
    AttackArtifacts, AttackId, BgcConfig, BgcError, EvaluationOptions, GeneratorKind,
    TriggerProvider, VictimSpec,
};
use bgc_defense::{resolve_defense, Defense, DefenseId};
use bgc_graph::{CondensedGraph, DatasetKind, Graph, PoisonBudget};
use bgc_nn::{
    accuracy, attack_success_rate, train_on_condensed, AdjacencyRef, GnnArchitecture, TrainingPlan,
};
use bgc_tensor::init::rng_from_seed;
use bgc_tensor::Matrix;

use crate::artifact_codec;
use crate::protocol::{
    attack_stage, clean_stage, lookup_attack, lookup_method, AttackKind, RunMetrics, RunSpec,
};
use crate::scale::ExperimentScale;

/// Base seed of the experiment grid; repetition `i` of a cell runs with
/// `DEFAULT_BASE_SEED + i` (matching [`RunSpec::bgc`]).
pub const DEFAULT_BASE_SEED: u64 = 17;

/// Version tag of the on-disk cell format; bump when [`CellResult`] or the
/// evaluation protocol changes so stale caches are recomputed.  v2: defended
/// cells train their victim from the shared defended init stream regardless
/// of the defense kind.  v3: the cell canon carries the code epochs of every
/// stage, so epoch bumps invalidate persisted cells.
const CELL_FILE_VERSION: u64 = 3;

/// Code epoch of the evaluation protocol (victim training, CTA/ASR
/// estimation, defended evaluation).  The artifact store and the cell canon
/// mix this into their keys; bump it when the evaluation changes numerical
/// behaviour so stale results are invalidated precisely.
pub const EVAL_CODE_EPOCH: u32 = 1;

/// The per-stage code epochs a runner keys its caches with.  The defaults
/// are the workspace's current epoch constants; tests override single
/// epochs via [`Runner::with_code_epochs`] to prove that bumping one
/// invalidates exactly that stage and its downstreams.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeEpochs {
    /// Dataset synthesis/loading ([`bgc_graph::DATASET_CODE_EPOCH`]).
    pub dataset: u32,
    /// Condensation methods ([`bgc_condense::CONDENSE_CODE_EPOCH`]).
    pub condense: u32,
    /// Attack implementations ([`bgc_core::ATTACK_CODE_EPOCH`]).
    pub attack: u32,
    /// Evaluation protocol ([`EVAL_CODE_EPOCH`]).
    pub eval: u32,
}

impl Default for CodeEpochs {
    fn default() -> Self {
        Self {
            dataset: bgc_graph::DATASET_CODE_EPOCH,
            condense: bgc_condense::CONDENSE_CODE_EPOCH,
            attack: bgc_core::ATTACK_CODE_EPOCH,
            eval: EVAL_CODE_EPOCH,
        }
    }
}

impl CodeEpochs {
    /// Fixed-order canonical encoding (part of [`CellKey::canon`]).
    fn canon(&self) -> String {
        format!(
            "d{}c{}a{}e{}",
            self.dataset, self.condense, self.attack, self.eval
        )
    }
}

/// How the victim is evaluated in a cell: undefended, or through a named
/// defense from the defense registry.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EvalKind {
    /// Undefended victim: CTA/ASR plus the clean-reference C-CTA/C-ASR.
    Standard,
    /// Victim trained and evaluated through a registered defense (Table IV).
    Defended(DefenseId),
}

impl EvalKind {
    /// The built-in Prune defense (Table IV).
    pub fn prune() -> Self {
        EvalKind::Defended(DefenseId::from("prune"))
    }

    /// The built-in Randsmooth defense (Table IV).
    pub fn randsmooth() -> Self {
        EvalKind::Defended(DefenseId::from("randsmooth"))
    }

    /// Stable name used in tables and the CLI.
    pub fn name(&self) -> &str {
        match self {
            EvalKind::Standard => "standard",
            EvalKind::Defended(id) => id.as_str(),
        }
    }

    /// Collision-free encoding used inside canonical cache keys: a defense
    /// that somehow carries the reserved name `standard` must never share a
    /// cache identity with the undefended mode.
    fn canon_tag(&self) -> String {
        match self {
            EvalKind::Standard => "standard".to_string(),
            EvalKind::Defended(id) => format!("defended:{}", id),
        }
    }

    /// Re-canonicalizes a defended mode's spelling against the registry
    /// (no-op for `Standard` and unregistered names).
    fn canonicalized(&self) -> EvalKind {
        match self {
            EvalKind::Standard => EvalKind::Standard,
            EvalKind::Defended(id) => EvalKind::Defended(DefenseId::from(id.as_str())),
        }
    }
}

impl fmt::Display for EvalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalKind {
    type Err = std::convert::Infallible;

    /// `"standard"` parses to the undefended mode; anything else names a
    /// defense (resolved against the registry at run time).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("standard") {
            Ok(EvalKind::Standard)
        } else {
            Ok(EvalKind::Defended(DefenseId::from(s)))
        }
    }
}

/// A poisoning-budget override, hashable (the ratio is stored as f32 bits).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetOverride {
    /// Fraction of the training nodes (stored as `f32::to_bits`).
    RatioBits(u32),
    /// Absolute number of nodes.
    Count(usize),
}

impl From<PoisonBudget> for BudgetOverride {
    fn from(budget: PoisonBudget) -> Self {
        match budget {
            PoisonBudget::Ratio(r) => BudgetOverride::RatioBits(r.to_bits()),
            PoisonBudget::Count(c) => BudgetOverride::Count(c),
        }
    }
}

impl BudgetOverride {
    /// Converts back to the graph crate's budget type.
    pub fn to_budget(self) -> PoisonBudget {
        match self {
            BudgetOverride::RatioBits(bits) => PoisonBudget::Ratio(f32::from_bits(bits)),
            BudgetOverride::Count(c) => PoisonBudget::Count(c),
        }
    }

    fn canon(&self) -> String {
        match self {
            BudgetOverride::RatioBits(bits) => format!("ratio{:08x}", bits),
            BudgetOverride::Count(c) => format!("count{}", c),
        }
    }
}

/// Deviations of a cell from the scale's baseline configuration — the
/// declarative equivalent of the `customize` closures the ablation tables
/// used to pass to `run_spec_with`.
///
/// `None` means "the scale's default"; [`Runner::group`] normalizes overrides
/// that equal the baseline back to `None`, so semantically identical cells
/// from different tables share one cache entry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellOverrides {
    /// Trigger-generator encoder (Table V).
    pub generator: Option<GeneratorKind>,
    /// Trigger size (Figure 8).
    pub trigger_size: Option<usize>,
    /// Condensation epochs (Figure 6).
    pub outer_epochs: Option<usize>,
    /// Poisoning budget (Table VII).
    pub poison_budget: Option<BudgetOverride>,
    /// Directed attack from this source class; also restricts the ASR
    /// estimate to that class (Table VI).
    pub source_class: Option<usize>,
    /// Victim architecture (Table III).
    pub architecture: Option<GnnArchitecture>,
    /// Victim layer count (Table VIII).
    pub num_layers: Option<usize>,
    /// Training plan of full-graph stages (selector, reference models, ASR
    /// computation-graph extraction).  `None` means the scale's per-dataset
    /// default (sampled on the large tier's big graphs, full batch
    /// elsewhere).
    pub plan: Option<TrainingPlan>,
}

impl CellOverrides {
    /// Applies the overrides to a cell's inputs.
    pub fn apply(
        &self,
        config: &mut BgcConfig,
        victim: &mut VictimSpec,
        options: &mut EvaluationOptions,
    ) {
        if let Some(generator) = self.generator {
            config.generator = generator;
        }
        if let Some(trigger_size) = self.trigger_size {
            config.trigger_size = trigger_size;
        }
        if let Some(epochs) = self.outer_epochs {
            config.condensation.outer_epochs = epochs;
        }
        if let Some(budget) = self.poison_budget {
            config.poison_budget = budget.to_budget();
        }
        if let Some(source) = self.source_class {
            *config = directed_attack(config, source);
            options.asr_source_class = Some(source);
        }
        if let Some(architecture) = self.architecture {
            victim.architecture = architecture;
        }
        if let Some(layers) = self.num_layers {
            victim.num_layers = layers;
        }
        if let Some(plan) = &self.plan {
            config.training_plan = plan.clone();
            victim.plan = plan.clone();
            options.plan = plan.clone();
        }
    }

    /// Fixed-order canonical encoding (part of [`CellKey::canon`]).
    fn canon(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or_else(|| "-".to_string(), T::to_string)
        }
        let mut canon = format!(
            "gen={}|tsz={}|ep={}|budget={}|src={}|arch={}|layers={}",
            self.generator.map_or("-", |g| g.name()),
            opt(&self.trigger_size),
            opt(&self.outer_epochs),
            self.poison_budget
                .map_or_else(|| "-".to_string(), |b| b.canon()),
            opt(&self.source_class),
            self.architecture.map_or("-", |a| a.name()),
            opt(&self.num_layers),
        );
        // Appended only when set: pre-plan cell canons (and their on-disk
        // file names) must stay byte-identical.
        if let Some(plan) = &self.plan {
            canon.push_str(&format!("|plan={}", plan));
        }
        canon
    }

    /// The subset of the overrides that changes the attack stage (everything
    /// except the victim-side fields).
    fn attack_canon(&self) -> String {
        let mut canon = format!(
            "gen={}|tsz={}|ep={}|budget={}|src={}",
            self.generator.map_or("-", |g| g.name()),
            self.trigger_size
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.outer_epochs
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.poison_budget
                .map_or_else(|| "-".to_string(), |b| b.canon()),
            self.source_class
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        );
        if let Some(plan) = &self.plan {
            canon.push_str(&format!("|plan={}", plan));
        }
        canon
    }
}

/// Full coordinates of one experiment cell (one repetition of one
/// configuration).  Hashable and canonically encodable: the key *is* the
/// cache identity, in memory and on disk, and every RNG stream of the cell
/// derives from [`CellKey::seed`], so results are independent of execution
/// order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack (registry name).
    pub method: MethodId,
    /// Attack to run (registry name).
    pub attack: AttackId,
    /// Condensation ratio as `f32::to_bits` (hashable, exact).
    pub ratio_bits: u32,
    /// Base seed of the grid.
    pub base_seed: u64,
    /// Repetition index; the cell seed is `base_seed + rep`.
    pub rep: usize,
    /// Victim evaluation mode.
    pub eval: EvalKind,
    /// Deviations from the scale's baseline configuration.
    pub overrides: CellOverrides,
    /// Per-stage code epochs of the runner that built the key.  Part of the
    /// canon, so bumping any stage's epoch retires persisted cell results;
    /// this is conservative (a dataset bump also retires eval-only work) —
    /// cells are cheap relative to their stages, and the stage artifacts in
    /// the content-addressed store invalidate precisely.
    pub epochs: CodeEpochs,
}

impl CellKey {
    /// The condensation ratio.
    pub fn ratio(&self) -> f32 {
        f32::from_bits(self.ratio_bits)
    }

    /// The seed every RNG stream of this cell derives from.
    pub fn seed(&self) -> u64 {
        self.base_seed + self.rep as u64
    }

    /// Canonical, stable, collision-checked encoding of the key.  Used as
    /// the in-memory stage-key prefix and (hashed) as the on-disk file name;
    /// the full string is stored inside the cell file and verified on load.
    pub fn canon(&self) -> String {
        format!(
            "v{}|{}|{}|{}|{}|r={:08x}|seed={}|rep={}|eval={}|{}|ce={}",
            CELL_FILE_VERSION,
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.attack,
            self.ratio_bits,
            self.base_seed,
            self.rep,
            self.eval.canon_tag(),
            self.overrides.canon(),
            self.epochs.canon(),
        )
    }

    /// Cache key of the clean-reference condensation stage: only the fields
    /// that influence clean condensation (no attack, victim or eval fields).
    fn clean_stage_key(&self) -> String {
        format!(
            "clean|{}|{}|{}|r={:08x}|seed={}|ep={}",
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.ratio_bits,
            self.seed(),
            self.overrides
                .outer_epochs
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        )
    }

    /// Cache key of the attack stage: everything that influences the attack
    /// outcome, excluding the victim and eval-mode fields, so Table III's six
    /// victims (for example) share one attack run.
    fn attack_stage_key(&self) -> String {
        format!(
            "attack|{}|{}|{}|{}|r={:08x}|seed={}|{}",
            self.scale.name(),
            self.dataset.name(),
            self.method,
            self.attack,
            self.ratio_bits,
            self.seed(),
            self.overrides.attack_canon(),
        )
    }

    /// On-disk file name: 64-bit FNV-1a of the canonical encoding.
    fn file_name(&self) -> String {
        format!("{:016x}.json", fnv1a64(self.canon().as_bytes()))
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Raw measurements of one cell.  For [`EvalKind::Standard`] cells the
/// `c_*` fields hold the clean-reference (C-CTA/C-ASR) columns; defense
/// cells skip the reference victim and report zeros there.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CellResult {
    /// Clean-reference victim CTA (C-CTA).
    pub c_cta: f32,
    /// Backdoored/defended victim CTA.
    pub cta: f32,
    /// Clean-reference victim ASR (C-ASR).
    pub c_asr: f32,
    /// Backdoored/defended victim ASR.
    pub asr: f32,
    /// Number of test nodes in the ASR estimate.
    pub asr_nodes: usize,
    /// Whether the condensation method reported out-of-memory.
    pub oom: bool,
}

impl CellResult {
    fn oom() -> Self {
        Self {
            c_cta: 0.0,
            cta: 0.0,
            c_asr: 0.0,
            asr: 0.0,
            asr_nodes: 0,
            oom: true,
        }
    }
}

/// All repetitions of one experiment configuration — what one table row or
/// figure point aggregates over.
#[derive(Clone, Debug)]
pub struct CellGroup {
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack.
    pub method: MethodId,
    /// Attack being evaluated.
    pub attack: AttackId,
    /// Condensation ratio.
    pub ratio: f32,
    /// Victim evaluation mode.
    pub eval: EvalKind,
    /// One key per repetition.
    pub keys: Vec<CellKey>,
}

/// A memoized computation stage shared between cells.  The first cell to
/// need a stage computes it inside the slot's `OnceLock`; concurrent cells
/// needing the same stage block on the lock and share the value.
struct StageCache<T> {
    slots: Mutex<BTreeMap<String, Arc<OnceLock<T>>>>,
    hits: AtomicUsize,
    computed: AtomicUsize,
}

impl<T: Clone> StageCache<T> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(BTreeMap::new()),
            hits: AtomicUsize::new(0),
            computed: AtomicUsize::new(0),
        }
    }

    fn get_or_compute(&self, key: String, compute: impl FnOnce() -> T) -> T {
        let slot = {
            let mut slots = relock(&self.slots);
            slots.entry(key).or_default().clone()
        };
        let mut ran = false;
        let value = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        if ran {
            self.computed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }
}

/// Cache-hit and execution counters of a [`Runner`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RunnerStats {
    /// Cells computed from scratch in this process.
    pub cells_computed: usize,
    /// Cells served from the in-memory result map (overlap between reports).
    pub cell_memory_hits: usize,
    /// Cells served from the on-disk cache (resumed runs).
    pub cell_disk_hits: usize,
    /// Attack stages computed from scratch.
    pub attack_stages_computed: usize,
    /// Attack stages shared between cells (e.g. across victims/defenses).
    pub attack_stage_hits: usize,
    /// Clean condensations computed from scratch.
    pub clean_stages_computed: usize,
    /// Clean condensations shared between cells (e.g. across attacks).
    pub clean_stage_hits: usize,
    /// Corrupt/stale cell files quarantined to `<name>.corrupt` and
    /// recomputed.
    pub cells_quarantined: usize,
    /// Cells whose results could not be persisted to the on-disk cache (the
    /// in-memory results stayed valid).
    pub persist_failures: usize,
    /// Stages served from the content-addressed artifact store (computed by
    /// an earlier process or another concurrent process).
    pub store_hits: usize,
    /// Stages computed in this process and published to the artifact store.
    pub store_computed: usize,
    /// Stages computed in-process because the artifact store was
    /// unavailable, timed out or failed (graceful degradation).
    pub store_degraded: usize,
    /// Sampled-training prefetch: batches produced by sampler threads
    /// (0 when no cell used the pipeline).
    pub prefetch_produced: u64,
    /// Sampled-training prefetch: batches consumed by trainers.
    pub prefetch_consumed: u64,
    /// Milliseconds trainers spent stalled waiting on the prefetch channel.
    pub prefetch_trainer_stall_ms: u64,
    /// Milliseconds sampler threads spent idle with a full prefetch channel.
    pub prefetch_sampler_idle_ms: u64,
}

impl RunnerStats {
    /// Total hits across every cache layer.
    pub fn total_hits(&self) -> usize {
        self.cell_memory_hits + self.cell_disk_hits + self.attack_stage_hits + self.clean_stage_hits
    }

    /// One-line human-readable summary.  Quarantine and persist-failure
    /// counts only appear when nonzero, so healthy runs print exactly what
    /// they always printed.
    pub fn summary(&self) -> String {
        let mut summary = format!(
            "cells: {} computed, {} memory hits, {} disk hits | attack stages: {} computed, {} shared | clean stages: {} computed, {} shared",
            self.cells_computed,
            self.cell_memory_hits,
            self.cell_disk_hits,
            self.attack_stages_computed,
            self.attack_stage_hits,
            self.clean_stages_computed,
            self.clean_stage_hits,
        );
        if self.store_hits + self.store_computed + self.store_degraded > 0 {
            summary.push_str(&format!(
                " | store: {} hits, {} computed, {} degraded",
                self.store_hits, self.store_computed, self.store_degraded
            ));
        }
        if self.cells_quarantined > 0 {
            summary.push_str(&format!(" | {} quarantined", self.cells_quarantined));
        }
        if self.persist_failures > 0 {
            summary.push_str(&format!(" | {} persist failures", self.persist_failures));
        }
        if self.prefetch_produced > 0 {
            summary.push_str(&format!(
                " | prefetch: {} produced, {} consumed, trainer stalled {} ms, sampler idle {} ms",
                self.prefetch_produced,
                self.prefetch_consumed,
                self.prefetch_trainer_stall_ms,
                self.prefetch_sampler_idle_ms
            ));
        }
        summary
    }
}

// Poison recovery for the runner's locks goes through the workspace-shared
// `bgc_runtime::relock`: cells execute behind an unwind boundary and none of
// the runner's locks is ever held across cell compute, so the protected maps
// cannot be observed mid-update; recovering keeps one panicked cell from
// wedging the rest of the grid behind `PoisonError`.

/// Best-effort extraction of a panic payload's message (`panic!` produces
/// `&'static str` or `String` payloads; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An outcome that did not execute in this wave (memory hit, previously
/// failed cell, or a skipped cell of an aborted wave).
fn resolved_outcome(key: &CellKey, status: CellStatus) -> CellOutcome {
    CellOutcome {
        key: key.clone(),
        status,
        attempts: 0,
        persist_error: None,
    }
}

// ---------------------------------------------------------------------------
// Ambient wave context
// ---------------------------------------------------------------------------

/// Per-outcome progress callback of a wave scope.  Called from the pool
/// threads as cells resolve, so implementations must synchronize their own
/// state (e.g. a mutex around a socket).
pub type WaveObserver = Arc<dyn Fn(&CellOutcome) + Send + Sync>;

/// Ambient per-request execution context for [`Runner::run_cells`] waves.
///
/// A caller that owns a whole unit of work spanning many waves — a daemon
/// request, a CLI invocation with a `--deadline` — enters a `WaveCtx` via
/// [`enter_wave`] on its thread; every wave the runner starts on that thread
/// (including nested ones from [`Runner::metrics`] read-back) picks it up:
///
/// * `deadline` — a request-level [`CancelToken`]; cells compose it with the
///   per-cell timeout via [`CancelToken::child_with_timeout`], so whichever
///   fires first cancels the cell;
/// * `transient` — failures of this wave are reported in the [`GridReport`]
///   but *not* recorded in the runner's permanent failure map, so a shared
///   long-lived runner (the daemon) can serve the same cell to a later
///   request instead of pinning one client's timeout forever;
/// * `observer` — streamed per-cell progress (the daemon's `cell` frames,
///   the CLI's `--format json` collector).
///
/// Scopes nest: every active observer receives events, the innermost
/// deadline applies, and the wave is transient when any scope is.
#[derive(Clone, Default)]
pub struct WaveCtx {
    /// Request-level cancellation/deadline token.
    pub deadline: Option<CancelToken>,
    /// Do not record this wave's failures in the permanent failure map.
    pub transient: bool,
    /// Streamed per-outcome progress callback.
    pub observer: Option<WaveObserver>,
}

thread_local! {
    static WAVES: RefCell<Vec<WaveCtx>> = const { RefCell::new(Vec::new()) };
}

/// Makes `ctx` ambient on the calling thread until the returned guard drops
/// (see [`WaveCtx`]).
#[must_use = "the wave context is only ambient while the returned guard lives"]
pub fn enter_wave(ctx: WaveCtx) -> WaveScope {
    WAVES.with(|stack| stack.borrow_mut().push(ctx));
    WaveScope { _private: () }
}

/// RAII guard of an entered wave context (see [`enter_wave`]).
#[derive(Debug)]
pub struct WaveScope {
    _private: (),
}

impl Drop for WaveScope {
    fn drop(&mut self) {
        WAVES.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The merged view of every entered wave scope, captured once per wave on
/// the submitting thread (cells execute on pool threads, where the
/// thread-local stack is not visible).
struct MergedWave {
    deadline: Option<CancelToken>,
    transient: bool,
    observers: Vec<WaveObserver>,
}

impl MergedWave {
    fn current() -> Self {
        WAVES.with(|stack| {
            let stack = stack.borrow();
            Self {
                deadline: stack.iter().rev().find_map(|ctx| ctx.deadline.clone()),
                transient: stack.iter().any(|ctx| ctx.transient),
                observers: stack
                    .iter()
                    .filter_map(|ctx| ctx.observer.clone())
                    .collect(),
            }
        })
    }

    fn notify(&self, outcome: &CellOutcome) {
        for observer in &self.observers {
            observer(outcome);
        }
    }
}

/// Terminal status of one cell in a [`GridReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum CellStatus {
    /// The cell completed; its result is readable via [`Runner::result`].
    Ok,
    /// The cell completed as the paper's out-of-memory condition (rendered
    /// as an `OOM` table row, not a failure).
    Oom,
    /// The cell failed with a typed error (registry lookup, condensation,
    /// I/O).
    Failed(BgcError),
    /// The cell exceeded the per-cell deadline and was cooperatively
    /// cancelled at a `bgc_runtime` checkpoint.
    TimedOut {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The cell panicked; the panic was caught at the cell boundary.
    Panicked {
        /// The panic payload's message.
        message: String,
    },
    /// The cell never started: an earlier cell failed and the runner is not
    /// in [`Runner::keep_going`] mode.
    Skipped,
}

impl CellStatus {
    /// Whether the cell produced a usable result (`Ok` or `Oom`).
    pub fn is_success(&self) -> bool {
        matches!(self, CellStatus::Ok | CellStatus::Oom)
    }

    /// The status as a typed error (`None` for successes and skipped cells).
    pub fn to_error(&self, canon: &str) -> Option<BgcError> {
        match self {
            CellStatus::Ok | CellStatus::Oom | CellStatus::Skipped => None,
            CellStatus::Failed(err) => Some(err.clone()),
            CellStatus::TimedOut { limit_ms } => Some(BgcError::CellTimedOut {
                canon: canon.to_string(),
                limit_ms: *limit_ms,
            }),
            CellStatus::Panicked { message } => Some(BgcError::CellPanicked {
                canon: canon.to_string(),
                message: message.clone(),
            }),
        }
    }

    /// Short human-readable label (grid summaries, CLI output).
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Oom => "oom",
            CellStatus::Failed(_) => "failed",
            CellStatus::TimedOut { .. } => "timed out",
            CellStatus::Panicked { .. } => "panicked",
            CellStatus::Skipped => "skipped",
        }
    }
}

/// Per-cell record of one [`Runner::run_cells`] wave.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's coordinates.
    pub key: CellKey,
    /// Terminal status of the cell in this wave.
    pub status: CellStatus,
    /// Execution attempts this wave spent on the cell; `0` when the cell was
    /// already resolved (an in-memory hit, or a cell that failed in an
    /// earlier wave of the same runner).
    pub attempts: usize,
    /// Set when the cell computed but its result could not be written to the
    /// on-disk cache (the in-memory result is still valid).
    pub persist_error: Option<String>,
}

/// Per-cell statuses of one [`Runner::run_cells`] wave, in submission order
/// (deduplicated).  This replaces the old first-error-wins return: a
/// ten-cell failure reports ten statuses, and [`Runner::keep_going`] callers
/// can render the cells that did complete.
#[derive(Clone, Debug)]
pub struct GridReport {
    /// One outcome per distinct submitted cell, in submission order.
    pub outcomes: Vec<CellOutcome>,
}

impl GridReport {
    /// Whether every cell completed (`Ok` or `Oom`).
    pub fn is_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.status.is_success())
    }

    /// Outcomes that failed (errored, timed out or panicked; skipped cells
    /// are not failures).
    pub fn failures(&self) -> Vec<&CellOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.status.is_success() && o.status != CellStatus::Skipped)
            .collect()
    }

    /// Cells that never started because the wave aborted on a failure.
    pub fn skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == CellStatus::Skipped)
            .count()
    }

    /// Cells whose results could not be written to the on-disk cache.
    pub fn persist_failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.persist_error.is_some())
            .count()
    }

    /// Every failure aggregated into one typed error (`None` when the wave
    /// succeeded).  A multi-cell failure retains every per-cell error.
    pub fn error(&self) -> Option<BgcError> {
        BgcError::aggregate(
            self.failures()
                .iter()
                .filter_map(|o| o.status.to_error(&o.key.canon()))
                .collect(),
        )
    }

    /// One-line summary, e.g. `121 cells: 119 ok, 1 oom, 1 panicked`.
    pub fn summary(&self) -> String {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for outcome in &self.outcomes {
            let label = outcome.status.label();
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        let mut parts: Vec<String> = counts
            .iter()
            .map(|(label, n)| format!("{} {}", n, label))
            .collect();
        let persist = self.persist_failures();
        if persist > 0 {
            parts.push(format!("{} persist failures", persist));
        }
        format!("{} cells: {}", self.outcomes.len(), parts.join(", "))
    }
}

type StageResult<T> = Result<T, BgcError>;

/// The experiment-grid engine.  See the module docs for the execution model.
pub struct Runner {
    scale: ExperimentScale,
    base_seed: u64,
    parallel: bool,
    keep_going: bool,
    cell_timeout: Option<Duration>,
    retries: usize,
    retry_backoff: Duration,
    fault_plan: Option<FaultPlan>,
    cache_dir: Option<PathBuf>,
    /// Content-addressed artifact store the stage caches read through
    /// (`None`: stages stay purely in-process, as before the store existed).
    store: Option<Arc<Store>>,
    /// Per-stage code epochs mixed into every cache key.
    epochs: CodeEpochs,
    results: Mutex<BTreeMap<CellKey, CellResult>>,
    /// Cells that failed terminally in an earlier wave.  A failed cell stays
    /// failed for the lifetime of the runner (so overlapping reports are
    /// deterministic); a fresh process retries it naturally.
    failures: Mutex<BTreeMap<CellKey, CellStatus>>,
    clean_cache: StageCache<StageResult<Arc<CondensedGraph>>>,
    attack_cache: StageCache<StageResult<AttackArtifacts>>,
    /// Generated datasets, shared across cells: `(dataset, seed)` fully
    /// determines the graph, so overlapping cells reuse one instance
    /// instead of re-generating it.
    graphs: StageCache<Arc<Graph>>,
    /// Content fingerprints of generated datasets (process-independent,
    /// unlike the `Arc`-keyed memo identity), shared across cells.
    fingerprints: StageCache<u64>,
    cells_computed: AtomicUsize,
    cell_memory_hits: AtomicUsize,
    cell_disk_hits: AtomicUsize,
    cells_quarantined: AtomicUsize,
    persist_failure_count: AtomicUsize,
    store_hits: AtomicUsize,
    store_computed: AtomicUsize,
    store_degraded: AtomicUsize,
}

impl Runner {
    /// A runner with the default on-disk cache under
    /// `target/experiments/<scale>/cells/` and the shared artifact store
    /// under [`bgc_store::default_store_root`].
    pub fn new(scale: ExperimentScale) -> Self {
        let dir = PathBuf::from("target/experiments")
            .join(scale.name())
            .join("cells");
        Self::with_cache_dir(scale, Some(dir))
            .with_store(Some(Store::open(bgc_store::default_store_root())))
    }

    /// A runner without on-disk persistence (unit tests, library use).
    pub fn in_memory(scale: ExperimentScale) -> Self {
        Self::with_cache_dir(scale, None)
    }

    /// A runner with an explicit cell-cache directory (`None` disables
    /// persistence).  Stale temp files left behind by killed processes are
    /// swept on construction; the atomic-rename persist protocol guarantees
    /// they are never the live copy.
    pub fn with_cache_dir(scale: ExperimentScale, cache_dir: Option<PathBuf>) -> Self {
        if let Some(dir) = &cache_dir {
            sweep_stale_tmp_files(dir);
        }
        Self {
            scale,
            base_seed: DEFAULT_BASE_SEED,
            parallel: true,
            keep_going: false,
            cell_timeout: None,
            retries: 0,
            retry_backoff: Duration::from_millis(100),
            fault_plan: None,
            cache_dir,
            store: None,
            epochs: CodeEpochs::default(),
            results: Mutex::new(BTreeMap::new()),
            failures: Mutex::new(BTreeMap::new()),
            clean_cache: StageCache::new(),
            attack_cache: StageCache::new(),
            graphs: StageCache::new(),
            fingerprints: StageCache::new(),
            cells_computed: AtomicUsize::new(0),
            cell_memory_hits: AtomicUsize::new(0),
            cell_disk_hits: AtomicUsize::new(0),
            cells_quarantined: AtomicUsize::new(0),
            persist_failure_count: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            store_computed: AtomicUsize::new(0),
            store_degraded: AtomicUsize::new(0),
        }
    }

    /// Attaches (or detaches) the content-addressed artifact store the
    /// clean- and attack-stage caches read through.  `None` keeps stages
    /// purely in-process.  The store is shared: multiple runners, processes
    /// and the daemon can point at one root and each artifact is computed
    /// once.
    pub fn with_store(mut self, store: Option<Arc<Store>>) -> Self {
        self.store = store;
        self
    }

    /// Overrides the per-stage code epochs (tests prove precise
    /// invalidation by bumping one stage's epoch).
    pub fn with_code_epochs(mut self, epochs: CodeEpochs) -> Self {
        self.epochs = epochs;
        self
    }

    /// The artifact store this runner reads through, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Disables the thread pool: cells run serially on the calling thread
    /// (results are bit-identical either way; this exists for the
    /// determinism test and for debugging).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Completes the rest of the grid around failed cells instead of
    /// aborting the wave at the first failure; every failure is recorded in
    /// the [`GridReport`].
    pub fn keep_going(mut self, keep_going: bool) -> Self {
        self.keep_going = keep_going;
        self
    }

    /// Sets a per-cell deadline.  Cells past the deadline are cooperatively
    /// cancelled at the next `bgc_runtime` checkpoint (trainer epochs,
    /// condensation outer epochs) and reported as [`CellStatus::TimedOut`].
    pub fn with_cell_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cell_timeout = timeout;
        self
    }

    /// Retries retriable cell failures (caught panics, I/O errors) up to
    /// `retries` extra attempts, with deterministic linear backoff.
    /// Deterministic failures — unknown registry names, condensation errors,
    /// deadline overruns — never retry.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Pause before retry attempt `n` is `backoff * n` (default 100 ms).
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Arms a deterministic fault-injection plan: it is entered around every
    /// cell with the cell's canonical key as context, so context filters
    /// target exact cells (see [`bgc_runtime::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Overrides the base seed of the grid (repetition `i` of a cell runs
    /// with `base_seed + i`).
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The runner's experiment scale.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The base seed of the grid.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Declares one experiment configuration as a group of per-repetition
    /// cells.  Overrides equal to the scale's baseline are normalized to
    /// `None` so identical cells from different tables share cache entries.
    pub fn group(
        &self,
        dataset: DatasetKind,
        method: impl Into<MethodId>,
        attack: impl Into<AttackId>,
        ratio: f32,
        eval: EvalKind,
        overrides: CellOverrides,
    ) -> CellGroup {
        self.group_seeded(
            dataset,
            method.into(),
            attack.into(),
            ratio,
            eval,
            overrides,
            self.base_seed,
        )
    }

    /// [`Runner::group`] with an explicit base seed (used by the experiment
    /// builder, whose specs carry their own seed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn group_seeded(
        &self,
        dataset: DatasetKind,
        method: MethodId,
        attack: AttackId,
        ratio: f32,
        eval: EvalKind,
        overrides: CellOverrides,
        base_seed: u64,
    ) -> CellGroup {
        // Re-canonicalize the spellings against the registries at lowering
        // time: ids created before their entry was registered (or via
        // `::new`) must not occupy a second cache identity.
        let method = MethodId::from(method.as_str());
        let attack = AttackId::from(attack.as_str());
        let eval = eval.canonicalized();
        let overrides = self.normalize(dataset, ratio, overrides);
        let keys = (0..self.scale.repetitions())
            .map(|rep| CellKey {
                scale: self.scale,
                dataset,
                method: method.clone(),
                attack: attack.clone(),
                ratio_bits: ratio.to_bits(),
                base_seed,
                rep,
                eval: eval.clone(),
                overrides: overrides.clone(),
                epochs: self.epochs,
            })
            .collect();
        CellGroup {
            dataset,
            method,
            attack,
            ratio,
            eval,
            keys,
        }
    }

    /// The default BGC group of Table II: standard evaluation, no overrides.
    pub fn bgc_group(
        &self,
        dataset: DatasetKind,
        method: impl Into<MethodId>,
        ratio: f32,
    ) -> CellGroup {
        self.group(
            dataset,
            method,
            AttackKind::Bgc,
            ratio,
            EvalKind::Standard,
            CellOverrides::default(),
        )
    }

    fn normalize(
        &self,
        dataset: DatasetKind,
        ratio: f32,
        mut overrides: CellOverrides,
    ) -> CellOverrides {
        let baseline = self.scale.bgc_config(dataset, ratio, self.base_seed);
        let victim = self.scale.victim_spec();
        if overrides.generator == Some(baseline.generator) {
            overrides.generator = None;
        }
        if overrides.trigger_size == Some(baseline.trigger_size) {
            overrides.trigger_size = None;
        }
        if overrides.outer_epochs == Some(baseline.condensation.outer_epochs) {
            overrides.outer_epochs = None;
        }
        if overrides.poison_budget.map(BudgetOverride::to_budget) == Some(baseline.poison_budget) {
            overrides.poison_budget = None;
        }
        if overrides.architecture == Some(victim.architecture) {
            overrides.architecture = None;
        }
        if overrides.num_layers == Some(victim.num_layers) {
            overrides.num_layers = None;
        }
        if overrides.plan.as_ref() == Some(&baseline.training_plan) {
            overrides.plan = None;
        }
        overrides
    }

    /// Executes every not-yet-known cell of `keys` (deduplicated), in
    /// parallel unless [`Runner::serial`], and reports one [`CellOutcome`]
    /// per distinct cell in submission order.
    ///
    /// Every cell runs behind an unwind boundary: a panic becomes
    /// [`CellStatus::Panicked`], a deadline overrun [`CellStatus::TimedOut`]
    /// and a typed error [`CellStatus::Failed`] — OOM cells stay ordinary
    /// OOM *results*.  Retriable failures retry per
    /// [`Runner::with_retries`].  Without [`Runner::keep_going`] the first
    /// failure stops cells that have not started yet (recorded as
    /// [`CellStatus::Skipped`]); with it the whole grid completes.
    pub fn run_cells(&self, keys: &[CellKey]) -> GridReport {
        let wave = MergedWave::current();
        let mut order: Vec<CellKey> = Vec::new();
        let mut resolved: BTreeMap<CellKey, CellOutcome> = BTreeMap::new();
        let mut pending: Vec<CellKey> = Vec::new();
        {
            let results = relock(&self.results);
            let failures = relock(&self.failures);
            let mut seen = BTreeSet::new();
            for key in keys {
                if !seen.insert(key.clone()) {
                    continue;
                }
                order.push(key.clone());
                if let Some(result) = results.get(key) {
                    self.cell_memory_hits.fetch_add(1, Ordering::Relaxed);
                    let status = if result.oom {
                        CellStatus::Oom
                    } else {
                        CellStatus::Ok
                    };
                    resolved.insert(key.clone(), resolved_outcome(key, status));
                } else if let Some(status) = failures.get(key) {
                    resolved.insert(key.clone(), resolved_outcome(key, status.clone()));
                } else {
                    pending.push(key.clone());
                }
            }
        }
        // Notify outside the lock scope: observers may do slow I/O.
        for key in &order {
            if let Some(outcome) = resolved.get(key) {
                wave.notify(outcome);
            }
        }
        let aborted = AtomicBool::new(false);
        let computed: Mutex<BTreeMap<CellKey, CellOutcome>> = Mutex::new(BTreeMap::new());
        let execute = |key: CellKey| {
            let outcome = if aborted.load(Ordering::Relaxed) {
                resolved_outcome(&key, CellStatus::Skipped)
            } else {
                let outcome = self.execute_cell(&key, &wave);
                if !outcome.status.is_success() {
                    if !wave.transient {
                        relock(&self.failures).insert(key.clone(), outcome.status.clone());
                    }
                    if !self.keep_going {
                        aborted.store(true, Ordering::Relaxed);
                    }
                }
                outcome
            };
            wave.notify(&outcome);
            relock(&computed).insert(key, outcome);
        };
        if self.parallel && pending.len() > 1 {
            pending.into_par_iter().for_each(execute);
        } else {
            for key in pending {
                execute(key);
            }
        }
        let mut computed = computed
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        GridReport {
            outcomes: order
                .into_iter()
                .map(|key| {
                    // Every submitted cell resolves from the pre-wave maps or
                    // the wave itself; if that invariant ever breaks, report
                    // the cell as unexecuted instead of panicking mid-grid.
                    resolved
                        .remove(&key)
                        .or_else(|| computed.remove(&key))
                        .unwrap_or_else(|| {
                            let canon = key.canon();
                            resolved_outcome(
                                &key,
                                CellStatus::Failed(BgcError::CellNotExecuted { canon }),
                            )
                        })
                })
                .collect(),
        }
    }

    /// Executes one cell behind the unwind boundary, with the deadline
    /// token, the fault-injection scope and bounded deterministic retry.
    fn execute_cell(&self, key: &CellKey, wave: &MergedWave) -> CellOutcome {
        let canon = key.canon();
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                let _faults = self.fault_plan.as_ref().map(|plan| plan.enter(&canon));
                // The per-cell timeout composes with the ambient request
                // deadline: the child token cancels on whichever fires first.
                let deadline = match (&wave.deadline, self.cell_timeout) {
                    (Some(request), Some(timeout)) => Some(request.child_with_timeout(timeout)),
                    (Some(request), None) => Some(request.clone()),
                    (None, Some(timeout)) => Some(CancelToken::with_timeout(timeout)),
                    (None, None) => None,
                };
                let _scope = deadline.as_ref().map(CancelToken::enter);
                match self.load_cell(key) {
                    Some(result) => Ok((result, false, None)),
                    None => self
                        .compute_cell(key)
                        .map(|result| (result, true, self.persist_cell(key, &result).err())),
                }
            }));
            let failure = match unwound {
                Ok(Ok((result, computed, persist_error))) => {
                    if computed {
                        self.cells_computed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.cell_disk_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(reason) = &persist_error {
                        self.persist_failure_count.fetch_add(1, Ordering::Relaxed);
                        eprintln!("warning: {}", reason);
                    }
                    relock(&self.results).insert(key.clone(), result);
                    let status = if result.oom {
                        CellStatus::Oom
                    } else {
                        CellStatus::Ok
                    };
                    return CellOutcome {
                        key: key.clone(),
                        status,
                        attempts: attempt,
                        persist_error,
                    };
                }
                Ok(Err(err)) => err,
                Err(payload) => {
                    if payload.downcast_ref::<CancelUnwind>().is_some() {
                        BgcError::CellTimedOut {
                            canon: canon.clone(),
                            limit_ms: self
                                .cell_timeout
                                .or_else(|| wave.deadline.as_ref().and_then(CancelToken::timeout))
                                .map_or(0, |t| t.as_millis() as u64),
                        }
                    } else {
                        BgcError::CellPanicked {
                            canon: canon.clone(),
                            message: panic_message(payload.as_ref()),
                        }
                    }
                }
            };
            if failure.is_retriable() && attempt <= self.retries {
                eprintln!(
                    "warning: cell attempt {} of {} failed, retrying: {}",
                    attempt,
                    self.retries + 1,
                    failure
                );
                std::thread::sleep(self.retry_backoff * attempt as u32);
                continue;
            }
            let status = match failure {
                BgcError::CellTimedOut { limit_ms, .. } => CellStatus::TimedOut { limit_ms },
                BgcError::CellPanicked { message, .. } => CellStatus::Panicked { message },
                other => CellStatus::Failed(other),
            };
            return CellOutcome {
                key: key.clone(),
                status,
                attempts: attempt,
                persist_error: None,
            };
        }
    }

    /// Runs every cell of the given groups (one call per report keeps the
    /// whole report's grid in flight at once).
    ///
    /// Without [`Runner::keep_going`] any failure returns as a typed error
    /// aggregating *every* failed cell (a ten-cell failure reports ten
    /// errors, not one).  With it the [`GridReport`] is returned regardless
    /// and the caller decides how to proceed.
    pub fn run_groups(&self, groups: &[&CellGroup]) -> Result<GridReport, BgcError> {
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.iter().cloned()).collect();
        let report = self.run_cells(&keys);
        if !self.keep_going {
            if let Some(err) = report.error() {
                return Err(err);
            }
        }
        Ok(report)
    }

    /// The completed result of a cell; the cell's failure if it failed, and
    /// [`BgcError::CellNotExecuted`] if it was never run.
    pub fn result(&self, key: &CellKey) -> Result<CellResult, BgcError> {
        if let Some(result) = relock(&self.results).get(key) {
            return Ok(*result);
        }
        let failed = relock(&self.failures)
            .get(key)
            .and_then(|status| status.to_error(&key.canon()));
        Err(failed.unwrap_or_else(|| BgcError::CellNotExecuted { canon: key.canon() }))
    }

    /// Aggregates a group's repetitions into a Table II-style row (runs any
    /// missing cells first).  A group with an OOM repetition reports the
    /// paper's `OOM` row.
    pub fn metrics(&self, group: &CellGroup) -> Result<RunMetrics, BgcError> {
        // Read-back path: only submit cells that were never executed, so
        // rendering a report after its `run_groups` wave does not inflate
        // the memory-hit counter (that stat measures overlap between
        // reports, not result lookups).
        let missing: Vec<CellKey> = {
            let results = relock(&self.results);
            group
                .keys
                .iter()
                .filter(|k| !results.contains_key(*k))
                .cloned()
                .collect()
        };
        if !missing.is_empty() {
            // Cells that failed in an earlier wave resolve from the failure
            // map without re-executing, so a failed group renders the same
            // error every time it is asked for.
            if let Some(err) = self.run_cells(&missing).error() {
                return Err(err);
            }
        }
        let results: Vec<CellResult> = group
            .keys
            .iter()
            .map(|k| self.result(k))
            .collect::<Result<_, _>>()?;
        if results.iter().any(|r| r.oom) {
            return Ok(RunMetrics::oom(&RunSpec {
                dataset: group.dataset,
                method: group.method.clone(),
                ratio: group.ratio,
                attack: group.attack.clone(),
                scale: self.scale,
                seed: self.base_seed,
            }));
        }
        let column = |f: fn(&CellResult) -> f32| -> Vec<f32> { results.iter().map(f).collect() };
        Ok(RunMetrics::from_repetitions(
            group.dataset.name(),
            group.method.as_str(),
            group.attack.as_str(),
            group.ratio,
            &column(|r| r.c_cta),
            &column(|r| r.cta),
            &column(|r| r.c_asr),
            &column(|r| r.asr),
        ))
    }

    /// Number of cells that failed terminally across all waves of this
    /// runner (drives the CLI's cell-failure exit code).
    pub fn failure_count(&self) -> usize {
        relock(&self.failures).len()
    }

    /// `(completed, oom)` cell counts of the in-memory result map (drives
    /// the CLI's OOM-only exit code).
    pub fn completed_counts(&self) -> (usize, usize) {
        let results = relock(&self.results);
        let oom = results.values().filter(|r| r.oom).count();
        (results.len(), oom)
    }

    /// Canonical keys of every completed cell in the in-memory result map,
    /// in canonical order (daemon status / cache listings).
    pub fn cached_cell_canons(&self) -> Vec<String> {
        relock(&self.results).keys().map(CellKey::canon).collect()
    }

    /// Snapshot of the cache/execution counters.
    pub fn stats(&self) -> RunnerStats {
        let prefetch = bgc_nn::prefetch_stats();
        RunnerStats {
            cells_computed: self.cells_computed.load(Ordering::Relaxed),
            cell_memory_hits: self.cell_memory_hits.load(Ordering::Relaxed),
            cell_disk_hits: self.cell_disk_hits.load(Ordering::Relaxed),
            attack_stages_computed: self.attack_cache.computed.load(Ordering::Relaxed),
            attack_stage_hits: self.attack_cache.hits.load(Ordering::Relaxed),
            clean_stages_computed: self.clean_cache.computed.load(Ordering::Relaxed),
            clean_stage_hits: self.clean_cache.hits.load(Ordering::Relaxed),
            cells_quarantined: self.cells_quarantined.load(Ordering::Relaxed),
            persist_failures: self.persist_failure_count.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_computed: self.store_computed.load(Ordering::Relaxed),
            store_degraded: self.store_degraded.load(Ordering::Relaxed),
            prefetch_produced: prefetch.batches_produced,
            prefetch_consumed: prefetch.batches_consumed,
            prefetch_trainer_stall_ms: prefetch.trainer_stall_ms,
            prefetch_sampler_idle_ms: prefetch.sampler_idle_ms,
        }
    }

    // ------------------------------------------------------------------
    // Cell execution
    // ------------------------------------------------------------------

    fn compute_cell(&self, key: &CellKey) -> Result<CellResult, BgcError> {
        let attack = lookup_attack(&key.attack)?;
        let method = lookup_method(&key.method)?;
        let defense = match &key.eval {
            EvalKind::Standard => None,
            EvalKind::Defended(id) => Some(
                resolve_defense(id.as_str())
                    .ok_or_else(|| BgcError::UnknownDefense(id.to_string()))?,
            ),
        };

        let seed = key.seed();
        let graph_memo = format!("{}|{}", key.dataset.name(), seed);
        let graph = self.graphs.get_or_compute(graph_memo.clone(), || {
            Arc::new(self.scale.load(key.dataset, seed))
        });
        // Store keys need a process-independent dataset identity (the memo
        // key above is only unique within this process); computed once per
        // graph, and only when a store is attached.
        let graph_fp = self.store.as_ref().map(|_| {
            let graph = graph.clone();
            self.fingerprints
                .get_or_compute(graph_memo, move || graph.content_fingerprint())
        });
        let mut config = self.scale.bgc_config(key.dataset, key.ratio(), seed);
        let mut victim = self.scale.victim_spec_for(key.dataset);
        let mut options = self.scale.evaluation_options_for(key.dataset, seed);
        key.overrides.apply(&mut config, &mut victim, &mut options);

        // Clean reference condensation — needed by the Standard evaluation
        // (C-CTA/C-ASR columns) and by attacks that inject into the clean
        // condensed graph (Naive Poison); defense cells of other attacks
        // skip it.
        let needs_clean = key.eval == EvalKind::Standard || attack.needs_clean_reference();
        let clean = if needs_clean {
            let outcome = self.clean_cache.get_or_compute(key.clean_stage_key(), || {
                // The fault point fires before the store read-through, so an
                // injected `stage.clean` fault hits even on a warm store.
                fault::fire("stage.clean");
                self.clean_through_store(&graph, graph_fp, key, method.as_ref(), &config)
            });
            match outcome {
                Ok(clean) => Some(clean),
                Err(err) if err.is_oom() => return Ok(CellResult::oom()),
                Err(err) => return Err(err),
            }
        } else {
            None
        };

        let artifacts = {
            let outcome = self
                .attack_cache
                .get_or_compute(key.attack_stage_key(), || {
                    fault::fire("stage.attack");
                    self.attack_through_store(
                        &graph,
                        graph_fp,
                        key,
                        attack.as_ref(),
                        method.as_ref(),
                        &config,
                        clean.as_deref(),
                    )
                });
            match outcome {
                Ok(artifacts) => artifacts,
                Err(err) if err.is_oom() => return Ok(CellResult::oom()),
                Err(err) => return Err(err),
            }
        };

        match defense {
            None => {
                let backdoored = evaluate_backdoor(
                    &graph,
                    &artifacts.condensed,
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                // Standard cells condense the clean reference above
                // (`needs_clean` is true for `EvalKind::Standard`); a missing
                // reference is a typed failure, not a panic.
                let Some(clean) = clean else {
                    return Err(BgcError::MissingCleanReference {
                        attack: key.attack.as_str().to_string(),
                    });
                };
                let reference = evaluate_backdoor(
                    &graph,
                    &clean,
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                Ok(CellResult {
                    c_cta: reference.cta,
                    cta: backdoored.cta,
                    c_asr: reference.asr,
                    asr: backdoored.asr,
                    asr_nodes: backdoored.asr_nodes,
                    oom: false,
                })
            }
            Some(defense) => {
                let (cta, asr, asr_nodes) = defended_evaluation(
                    &graph,
                    &artifacts.condensed,
                    defense.as_ref(),
                    artifacts.provider.as_ref(),
                    &config,
                    &victim,
                    &options,
                );
                Ok(CellResult {
                    c_cta: 0.0,
                    cta,
                    c_asr: 0.0,
                    asr,
                    asr_nodes,
                    oom: false,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Content-addressed stage artifacts
    // ------------------------------------------------------------------

    fn count_role(&self, role: StoreRole) {
        let counter = match role {
            StoreRole::Hit => &self.store_hits,
            StoreRole::Computed => &self.store_computed,
            StoreRole::Degraded => &self.store_degraded,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Store key of a clean condensation: the dataset and condensation code
    /// epochs, the graph's content fingerprint, the method, and the full
    /// condensation canon (ratio and seed included).
    fn clean_store_key(&self, key: &CellKey, graph_fp: u64, config: &BgcConfig) -> StoreKey {
        KeyBuilder::new("clean", self.epochs.condense)
            .field("dsep", self.epochs.dataset)
            .field("scale", self.scale.name())
            .field("dataset", key.dataset.name())
            .hash_field("graph", graph_fp)
            .field("method", &key.method)
            .field("cond", config.condensation.canon())
            .build()
    }

    /// Store key of an attack stage: the clean key's inputs plus the attack
    /// code epoch, the attack name and the full attack-config canon.
    /// Attacks that consume the clean reference chain the clean artifact's
    /// key hash as an upstream field, so invalidating the clean stage
    /// (e.g. a condensation epoch bump) invalidates them too.
    fn attack_store_key(
        &self,
        key: &CellKey,
        graph_fp: u64,
        config: &BgcConfig,
        needs_clean: bool,
    ) -> StoreKey {
        let mut builder = KeyBuilder::new("attack", self.epochs.attack)
            .field("dsep", self.epochs.dataset)
            .field("cdep", self.epochs.condense)
            .field("scale", self.scale.name())
            .field("dataset", key.dataset.name())
            .hash_field("graph", graph_fp)
            .field("method", &key.method)
            .field("attack", &key.attack)
            .field("cfg", config.canon());
        if needs_clean {
            builder = builder.upstream("clean", &self.clean_store_key(key, graph_fp, config));
        }
        builder.build()
    }

    /// Clean-stage computation read through the artifact store (straight
    /// compute when no store is attached).  Failed computations are
    /// returned but never persisted.
    fn clean_through_store(
        &self,
        graph: &Graph,
        graph_fp: Option<u64>,
        key: &CellKey,
        method: &dyn CondensationMethod,
        config: &BgcConfig,
    ) -> StageResult<Arc<CondensedGraph>> {
        let (Some(store), Some(graph_fp)) = (&self.store, graph_fp) else {
            return clean_stage(graph, method, config).map(Arc::new);
        };
        let store_key = self.clean_store_key(key, graph_fp, config);
        let (result, role) = store.get_or_compute(
            &store_key,
            |bytes| artifact_codec::decode_condensed(bytes).map(|g| Ok(Arc::new(g))),
            |result| {
                result
                    .as_ref()
                    .ok()
                    .map(|g| artifact_codec::encode_condensed(g))
            },
            || clean_stage(graph, method, config).map(Arc::new),
        );
        self.count_role(role);
        result
    }

    /// Attack-stage computation read through the artifact store.  Artifacts
    /// whose trigger provider is not snapshottable (third-party registry
    /// attacks) are returned but stay process-local.
    #[allow(clippy::too_many_arguments)]
    fn attack_through_store(
        &self,
        graph: &Graph,
        graph_fp: Option<u64>,
        key: &CellKey,
        attack: &dyn Attack,
        method: &dyn CondensationMethod,
        config: &BgcConfig,
        clean: Option<&CondensedGraph>,
    ) -> StageResult<AttackArtifacts> {
        let (Some(store), Some(graph_fp)) = (&self.store, graph_fp) else {
            return attack_stage(attack, method, graph, config, clean);
        };
        let store_key =
            self.attack_store_key(key, graph_fp, config, attack.needs_clean_reference());
        let (result, role) = store.get_or_compute(
            &store_key,
            |bytes| artifact_codec::decode_attack(bytes).map(Ok),
            |result| result.as_ref().ok().and_then(artifact_codec::encode_attack),
            || attack_stage(attack, method, graph, config, clean),
        );
        self.count_role(role);
        result
    }

    // ------------------------------------------------------------------
    // On-disk cell cache
    // ------------------------------------------------------------------

    /// Loads a persisted cell, verifying the integrity footer (version and
    /// checksum), the JSON body and the stored canonical key.  A file that
    /// fails any check is quarantined to `<name>.corrupt` and the cell
    /// recomputes; a read error falls back to recomputation.
    fn load_cell(&self, key: &CellKey) -> Option<CellResult> {
        let dir = self.cache_dir.as_ref()?;
        let path = dir.join(key.file_name());
        let read = fault::fire_io("runner.load").and_then(|()| fs::read_to_string(&path));
        let text = match read {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return None,
            Err(err) => {
                eprintln!(
                    "warning: could not read {}: {} (recomputing)",
                    path.display(),
                    err
                );
                return None;
            }
        };
        match parse_cell_file(&text, key) {
            Ok(result) => Some(result),
            Err(reason) => {
                self.quarantine(&path, &reason);
                None
            }
        }
    }

    /// Moves a corrupt/stale cell file aside to `<name>.corrupt` so the cell
    /// recomputes and re-persists cleanly; the original bytes are kept for
    /// inspection.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.cells_quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let target = path.with_file_name(format!("{}.corrupt", name));
        match fs::rename(path, &target) {
            Ok(()) => eprintln!(
                "warning: quarantined corrupt cell file {} ({}); recomputing",
                path.display(),
                reason
            ),
            Err(err) => eprintln!(
                "warning: corrupt cell file {} ({}) could not be quarantined: {}; recomputing",
                path.display(),
                reason,
                err
            ),
        }
    }

    /// Atomically persists a completed cell: the payload (JSON plus
    /// integrity footer) goes to a process-unique temp file which is then
    /// renamed into place, so a crash mid-write never leaves a partial cell
    /// file behind.  Failures are returned as a description instead of
    /// failing the cell — the in-memory result is still valid.
    fn persist_cell(&self, key: &CellKey, result: &CellResult) -> Result<(), String> {
        let Some(dir) = self.cache_dir.as_ref() else {
            return Ok(());
        };
        fs::create_dir_all(dir)
            .map_err(|err| format!("could not create {}: {}", dir.display(), err))?;
        let file = CellFile {
            version: CELL_FILE_VERSION,
            canon: key.canon(),
            ratio: key.ratio(),
            result: *result,
        };
        let json = serde_json::to_string_pretty(&file)
            .map_err(|err| format!("could not serialize cell: {}", err))?;
        let path = dir.join(key.file_name());
        let tmp = dir.join(format!("{}.tmp-{}", key.file_name(), std::process::id()));
        let write = (|| -> std::io::Result<()> {
            fs::write(&tmp, seal_cell_payload(&json))?;
            // The window between temp write and rename is the kill/abort
            // target of the atomicity tests.
            fault::fire_io("runner.persist")?;
            fs::rename(&tmp, &path)
        })();
        write.map_err(|err| {
            let _ = fs::remove_file(&tmp);
            format!("could not persist {}: {}", path.display(), err)
        })
    }
}

/// Appends the integrity footer: a comment line carrying the cell-format
/// version and the FNV-1a64 checksum of the JSON body, verified on load.
fn seal_cell_payload(json: &str) -> String {
    format!(
        "{}\n#bgc-cell v{} fnv1a64={:016x}\n",
        json,
        CELL_FILE_VERSION,
        fnv1a64(json.as_bytes())
    )
}

/// Parses and verifies a persisted cell: footer present, version current,
/// checksum matching, JSON well-formed and the stored canonical key equal to
/// the requested cell's (the file name is a 64-bit hash; the canon guards
/// against collisions).  Any violation is reported as a quarantine reason.
fn parse_cell_file(text: &str, key: &CellKey) -> Result<CellResult, String> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let (body, footer) = trimmed
        .rsplit_once('\n')
        .ok_or("missing integrity footer")?;
    let rest = footer
        .strip_prefix("#bgc-cell v")
        .ok_or("missing integrity footer")?;
    let (version, checksum) = rest
        .split_once(" fnv1a64=")
        .ok_or("malformed integrity footer")?;
    let version: u64 = version
        .parse()
        .map_err(|_| "malformed integrity footer".to_string())?;
    if version != CELL_FILE_VERSION {
        return Err(format!(
            "stale cell format v{} (current v{})",
            version, CELL_FILE_VERSION
        ));
    }
    let expected =
        u64::from_str_radix(checksum, 16).map_err(|_| "malformed integrity footer".to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "checksum mismatch (stored {:016x}, computed {:016x})",
            expected, actual
        ));
    }
    let value: serde_json::Value =
        serde_json::from_str(body).map_err(|err| format!("unparseable JSON: {}", err))?;
    let stored_version = value
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or("missing version field")?;
    if stored_version != CELL_FILE_VERSION {
        return Err(format!("stale cell version {}", stored_version));
    }
    let canon = value
        .get("canon")
        .and_then(|v| v.as_str())
        .ok_or("missing canon field")?;
    if canon != key.canon() {
        return Err("canonical key mismatch (hash collision or stale key)".to_string());
    }
    let result = value.get("result").ok_or("missing result field")?;
    let field = |name: &str| -> Result<f32, String> {
        result
            .get(name)
            .and_then(|v| v.as_f64())
            .map(|v| v as f32)
            .ok_or_else(|| format!("missing result field '{}'", name))
    };
    Ok(CellResult {
        c_cta: field("c_cta")?,
        cta: field("cta")?,
        c_asr: field("c_asr")?,
        asr: field("asr")?,
        asr_nodes: result
            .get("asr_nodes")
            .and_then(|v| v.as_u64())
            .ok_or("missing result field 'asr_nodes'")? as usize,
        oom: result
            .get("oom")
            .and_then(|v| v.as_bool())
            .ok_or("missing result field 'oom'")?,
    })
}

/// Removes temp files left behind by killed processes.  The atomic-rename
/// persist protocol guarantees a temp file is never the live copy of a
/// cell.
fn sweep_stale_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().contains(".json.tmp-") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// On-disk representation of one completed cell.
#[derive(Serialize)]
struct CellFile {
    version: u64,
    canon: String,
    ratio: f32,
    result: CellResult,
}

/// CTA/ASR of a victim evaluated through a [`Defense`] (Table IV):
///
/// 1. the condensed graph is passed through [`Defense::sanitize`]
///    (dataset-level defenses prune/transform it; model-level defenses leave
///    it alone);
/// 2. the victim trains on the sanitized graph;
/// 3. every prediction — clean test nodes and triggered nodes alike — goes
///    through [`Defense::predict`] when the defense overrides inference
///    (randomized smoothing), and the plain forward pass otherwise.
///
/// The victim-init RNG and the ASR node sample come from independent
/// streams, and the sample is the same one `evaluate_backdoor` uses, so
/// defended and undefended rows are measured on identical node sets.
fn defended_evaluation(
    graph: &Graph,
    condensed: &CondensedGraph,
    defense: &dyn Defense,
    provider: &dyn TriggerProvider,
    config: &BgcConfig,
    victim: &VictimSpec,
    options: &EvaluationOptions,
) -> (f32, f32, usize) {
    let sanitized = defense.sanitize(condensed);
    let mut init_rng = rng_from_seed(options.seed ^ 0x5107);
    let mut model = victim.architecture.build(
        graph.num_features(),
        victim.hidden_dim,
        graph.num_classes,
        victim.num_layers,
        &mut init_rng,
    );
    train_on_condensed(model.as_mut(), &sanitized, &victim.train);
    let predict = |adj: &AdjacencyRef, features: &Matrix| -> Vec<usize> {
        defense
            .predict(model.as_ref(), adj, features, graph.num_classes)
            .unwrap_or_else(|| model.predict(adj, features))
    };

    let full_adj = AdjacencyRef::from_graph(graph);
    let preds = predict(&full_adj, &graph.features);
    let test_preds: Vec<usize> = graph.split.test.iter().map(|&i| preds[i]).collect();
    let test_labels = graph.labels_of(&graph.split.test);
    let cta = accuracy(&test_preds, &test_labels);

    let sample = asr_sample_nodes(graph, options, config.target_class);
    let mut triggered = Vec::with_capacity(sample.len());
    for &node in &sample {
        let attached = attach_for_evaluation(
            graph,
            node,
            provider.trigger_size(),
            config,
            &options.plan,
            options.seed,
        );
        let trigger = provider.trigger_for(&full_adj, &graph.features, node);
        let features = attached.combined_features_plain(&trigger);
        let preds = predict(&attached.adjacency_ref(), &features);
        triggered.push(preds[attached.center]);
    }
    let asr = attack_success_rate(&triggered, config.target_class);
    (cta, asr, sample.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_condense::CondensationKind;

    /// A tiny two-cell grid that shares the clean stage between two attacks.
    fn tiny_groups(runner: &Runner) -> Vec<CellGroup> {
        let overrides = CellOverrides {
            outer_epochs: Some(4),
            ..CellOverrides::default()
        };
        vec![
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                overrides.clone(),
            ),
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::NaivePoison,
                0.026,
                EvalKind::Standard,
                overrides,
            ),
        ]
    }

    #[test]
    fn keys_are_canonical_and_normalized() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        // Overrides equal to the quick baseline collapse to the default key.
        let baseline = runner.scale.bgc_config(DatasetKind::Cora, 0.026, 17);
        let explicit = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                generator: Some(baseline.generator),
                trigger_size: Some(baseline.trigger_size),
                outer_epochs: Some(baseline.condensation.outer_epochs),
                architecture: Some(GnnArchitecture::Gcn),
                num_layers: Some(2),
                ..CellOverrides::default()
            },
        );
        let default = runner.bgc_group(DatasetKind::Cora, CondensationKind::GCond, 0.026);
        assert_eq!(explicit.keys, default.keys);

        // Distinct coordinates produce distinct canonical encodings.
        let other = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                num_layers: Some(3),
                ..CellOverrides::default()
            },
        );
        assert_ne!(default.keys[0].canon(), other.keys[0].canon());
        assert_ne!(default.keys[0].file_name(), other.keys[0].file_name());
        // The victim-side override leaves the attack stage shareable.
        assert_eq!(
            default.keys[0].attack_stage_key(),
            other.keys[0].attack_stage_key()
        );
        assert_eq!(default.keys[0].seed(), 17);
    }

    #[test]
    fn string_spellings_share_keys_with_typed_kinds() {
        // The CLI parses names; the regenerators pass enum kinds — both must
        // produce identical cell keys (one spelling, one cache entry).
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let typed = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        let spelled = runner.group(
            DatasetKind::Cora,
            "gcond",
            "bgc",
            0.026,
            "standard".parse().unwrap(),
            CellOverrides::default(),
        );
        assert_eq!(typed.keys, spelled.keys);
        assert_eq!(EvalKind::prune().name(), "prune");
        assert_eq!("PRUNE".parse::<EvalKind>().unwrap(), EvalKind::prune());
        assert_eq!(
            "randsmooth".parse::<EvalKind>().unwrap(),
            EvalKind::randsmooth()
        );
    }

    #[test]
    fn parallel_and_serial_execution_are_bit_identical() {
        let serial = Runner::in_memory(ExperimentScale::Quick).serial();
        let parallel = Runner::in_memory(ExperimentScale::Quick);
        let groups = tiny_groups(&serial);
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.clone()).collect();
        assert!(serial.run_cells(&keys).is_ok());
        assert!(parallel.run_cells(&keys).is_ok());
        for key in &keys {
            let a = serial.result(key).unwrap();
            let b = parallel.result(key).unwrap();
            assert_eq!(a.c_cta.to_bits(), b.c_cta.to_bits(), "{}", key.canon());
            assert_eq!(a.cta.to_bits(), b.cta.to_bits(), "{}", key.canon());
            assert_eq!(a.c_asr.to_bits(), b.c_asr.to_bits(), "{}", key.canon());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits(), "{}", key.canon());
            assert_eq!(a.asr_nodes, b.asr_nodes);
        }
        // The two attacks on the same coordinates share one clean
        // condensation in both execution modes.
        assert_eq!(serial.stats().clean_stages_computed, 1);
        assert_eq!(parallel.stats().clean_stages_computed, 1);
        assert!(serial.stats().clean_stage_hits >= 1);
    }

    #[test]
    fn disk_cache_resumes_with_identical_results() {
        let dir = std::env::temp_dir().join(format!("bgc-runner-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let first = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone()));
        let groups = tiny_groups(&first);
        let keys: Vec<CellKey> = groups.iter().flat_map(|g| g.keys.clone()).collect();
        assert!(first.run_cells(&keys).is_ok());
        assert_eq!(first.stats().cells_computed, keys.len());
        assert_eq!(first.stats().cell_disk_hits, 0);

        // A fresh runner (fresh process, conceptually) is served entirely
        // from disk, bit-identically.
        let second = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone()));
        assert!(second.run_cells(&keys).is_ok());
        let stats = second.stats();
        assert_eq!(stats.cell_disk_hits, keys.len());
        assert_eq!(stats.cells_computed, 0);
        for key in &keys {
            let a = first.result(key).unwrap();
            let b = second.result(key).unwrap();
            assert_eq!(a.cta.to_bits(), b.cta.to_bits());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits());
            assert_eq!(a.c_cta.to_bits(), b.c_cta.to_bits());
            assert_eq!(a.c_asr.to_bits(), b.c_asr.to_bits());
        }

        // Re-running on the same runner hits the in-memory map, and the
        // report still carries per-cell outcomes (attempts 0: resolved
        // without executing).
        let report = second.run_cells(&keys);
        assert!(report.is_ok());
        assert!(report.outcomes.iter().all(|o| o.attempts == 0));
        assert_eq!(second.stats().cell_memory_hits, keys.len());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_aggregate_and_match_the_protocol_shape() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                outer_epochs: Some(4),
                ..CellOverrides::default()
            },
        );
        let metrics = runner.metrics(&group).unwrap();
        assert_eq!(metrics.dataset, "cora");
        assert_eq!(metrics.method, "GCond-X");
        assert!(!metrics.oom);
        assert!(metrics.cta > 0.0 && metrics.cta <= 1.0);
        // Quick scale has one repetition: the sample std collapses to zero.
        assert_eq!(metrics.asr_std, 0.0);
    }

    #[test]
    fn unknown_registry_names_fail_with_typed_errors() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            "GhostAttack",
            0.026,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        assert!(matches!(
            runner.metrics(&group),
            Err(BgcError::UnknownAttack(name)) if name == "GhostAttack"
        ));
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Defended(DefenseId::new("moat")),
            CellOverrides {
                outer_epochs: Some(2),
                ..CellOverrides::default()
            },
        );
        assert!(matches!(
            runner.metrics(&group),
            Err(BgcError::UnknownDefense(name)) if name == "moat"
        ));
        // An unexecuted cell reads back as a typed error, not a panic.
        let group = runner.bgc_group(DatasetKind::Citeseer, CondensationKind::GCond, 0.018);
        assert!(matches!(
            runner.result(&group.keys[0]),
            Err(BgcError::CellNotExecuted { .. })
        ));
    }

    #[test]
    fn oom_cells_render_as_oom_rows() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let group = runner.group(
            DatasetKind::Reddit,
            CondensationKind::GcSntk,
            AttackKind::Bgc,
            0.0005,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        // Inject an OOM cell directly (running GC-SNTK to an actual OOM
        // needs a paper-scale Reddit load); `metrics` must aggregate it into
        // the paper's OOM row.
        {
            let mut results = relock(&runner.results);
            for key in &group.keys {
                results.insert(key.clone(), CellResult::oom());
            }
        }
        let metrics = runner.metrics(&group).unwrap();
        assert!(metrics.oom);
        assert!(metrics.table_row().contains("OOM"));
    }

    #[test]
    fn keep_going_completes_the_grid_around_failures() {
        let overrides = CellOverrides {
            outer_epochs: Some(4),
            ..CellOverrides::default()
        };
        let bad_then_good = |runner: &Runner| -> Vec<CellKey> {
            let bad = runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                "GhostAttack",
                0.026,
                EvalKind::Standard,
                overrides.clone(),
            );
            let good = runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                overrides.clone(),
            );
            bad.keys.into_iter().chain(good.keys).collect()
        };

        // keep-going: the failure is recorded, the other cell completes.
        let runner = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .keep_going(true);
        let keys = bad_then_good(&runner);
        let report = runner.run_cells(&keys);
        assert!(!report.is_ok());
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.skipped(), 0);
        assert!(matches!(
            &report.outcomes[0].status,
            CellStatus::Failed(BgcError::UnknownAttack(name)) if name == "GhostAttack"
        ));
        assert_eq!(report.outcomes[1].status, CellStatus::Ok);
        assert!(runner.result(&keys[1]).is_ok());
        assert!(report.summary().contains("1 failed"));
        // The failed cell reads back as its failure, not CellNotExecuted.
        assert!(matches!(
            runner.result(&keys[0]),
            Err(BgcError::UnknownAttack(_))
        ));
        // Re-submitting does not re-execute the failed cell: the outcome is
        // resolved from the failure map (attempts 0) with the same status.
        let again = runner.run_cells(&keys);
        assert_eq!(again.outcomes[0].attempts, 0);
        assert!(matches!(
            &again.outcomes[0].status,
            CellStatus::Failed(BgcError::UnknownAttack(_))
        ));

        // Without keep-going (serial, so the order is deterministic), the
        // failure aborts the wave and the second cell is skipped.
        let runner = Runner::in_memory(ExperimentScale::Quick).serial();
        let keys = bad_then_good(&runner);
        let report = runner.run_cells(&keys);
        assert!(matches!(
            &report.outcomes[0].status,
            CellStatus::Failed(BgcError::UnknownAttack(_))
        ));
        assert_eq!(report.outcomes[1].status, CellStatus::Skipped);
        assert_eq!(report.skipped(), 1);
        // Skipped cells are not failures: the aggregated error names only
        // the cell that actually failed.
        assert!(matches!(report.error(), Some(BgcError::UnknownAttack(_))));
    }

    #[test]
    fn injected_panic_is_isolated_and_bounded_retry_recovers() {
        use bgc_runtime::{FaultAction, FaultSpec};

        let overrides = CellOverrides {
            outer_epochs: Some(4),
            ..CellOverrides::default()
        };
        let groups = |runner: &Runner| -> Vec<CellKey> {
            let cora = runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                overrides.clone(),
            );
            let citeseer = runner.group(
                DatasetKind::Citeseer,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.018,
                EvalKind::Standard,
                overrides.clone(),
            );
            cora.keys.into_iter().chain(citeseer.keys).collect()
        };
        let citeseer_clean_panic = || {
            FaultPlan::new()
                .with(FaultSpec::new("stage.clean", FaultAction::Panic).in_context("citeseer"))
        };

        // The injected panic is caught at the cell boundary: the cora cell
        // completes, the citeseer cell reports Panicked.
        let faulted = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .keep_going(true)
            .with_fault_plan(citeseer_clean_panic());
        let keys = groups(&faulted);
        let report = faulted.run_cells(&keys);
        assert_eq!(report.outcomes[0].status, CellStatus::Ok);
        assert!(matches!(
            &report.outcomes[1].status,
            CellStatus::Panicked { message } if message.contains("stage.clean")
        ));
        assert!(matches!(
            faulted.result(&keys[1]),
            Err(BgcError::CellPanicked { .. })
        ));

        // Faults fire exactly once, so one retry heals the cell — and the
        // healed result is bit-identical to a fault-free run.
        let retried = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_retries(1)
            .with_retry_backoff(Duration::from_millis(1))
            .with_fault_plan(citeseer_clean_panic());
        let report = retried.run_cells(&keys);
        assert!(report.is_ok());
        assert_eq!(report.outcomes[1].attempts, 2);

        let plain = Runner::in_memory(ExperimentScale::Quick).serial();
        assert!(plain.run_cells(&keys).is_ok());
        for key in &keys {
            let a = retried.result(key).unwrap();
            let b = plain.result(key).unwrap();
            assert_eq!(a.cta.to_bits(), b.cta.to_bits(), "{}", key.canon());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits(), "{}", key.canon());
        }
    }

    #[test]
    fn cell_deadline_times_out_cooperatively() {
        let runner = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .keep_going(true)
            .with_retries(3)
            .with_cell_timeout(Some(Duration::ZERO));
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                outer_epochs: Some(4),
                ..CellOverrides::default()
            },
        );
        let report = runner.run_cells(&group.keys);
        assert_eq!(
            report.outcomes[0].status,
            CellStatus::TimedOut { limit_ms: 0 }
        );
        // Deadline overruns would only overrun again: never retried.
        assert_eq!(report.outcomes[0].attempts, 1);
        assert!(matches!(
            runner.result(&group.keys[0]),
            Err(BgcError::CellTimedOut { limit_ms: 0, .. })
        ));
    }

    #[test]
    fn corrupt_cell_files_are_quarantined_and_recomputed_identically() {
        let dir = std::env::temp_dir().join(format!("bgc-corrupt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let seed = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone())).serial();
        let group = seed.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                outer_epochs: Some(4),
                ..CellOverrides::default()
            },
        );
        assert!(seed.run_cells(&group.keys).is_ok());
        let path = dir.join(group.keys[0].file_name());
        let pristine = fs::read_to_string(&path).expect("cell file was persisted");
        assert!(pristine.contains("#bgc-cell v"), "integrity footer present");

        let corruptions: Vec<(&str, String)> = vec![
            ("truncated", pristine[..pristine.len() / 2].to_string()),
            ("bit-flipped", pristine.replacen("\"cta\"", "\"ctA\"", 1)),
            (
                "stale-version",
                pristine.replace("#bgc-cell v3", "#bgc-cell v2"),
            ),
            ("footer-less (pre-footer format)", {
                let json_end = pristine.rfind("\n#bgc-cell").unwrap();
                pristine[..json_end].to_string()
            }),
        ];
        for (label, corrupted) in corruptions {
            fs::write(&path, corrupted).unwrap();
            let runner = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone())).serial();
            assert!(runner.run_cells(&group.keys).is_ok(), "{}", label);
            let stats = runner.stats();
            assert_eq!(stats.cells_quarantined, 1, "{}", label);
            assert_eq!(stats.cells_computed, 1, "{}: recomputed, not loaded", label);
            assert_eq!(stats.cell_disk_hits, 0, "{}", label);
            assert!(stats.summary().contains("1 quarantined"), "{}", label);
            // The corrupt bytes are kept for inspection...
            let quarantined = path.with_file_name(format!(
                "{}.corrupt",
                path.file_name().unwrap().to_string_lossy()
            ));
            assert!(quarantined.exists(), "{}", label);
            // ...and the healed file is byte-identical to the original.
            let healed = fs::read_to_string(&path).unwrap();
            assert_eq!(healed, pristine, "{}", label);
            let _ = fs::remove_file(&quarantined);
        }

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stages_read_through_the_store_and_epoch_bumps_invalidate() {
        use bgc_store::Store;

        let root = std::env::temp_dir().join(format!("bgc-store-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let group_of = |runner: &Runner| {
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                CellOverrides {
                    outer_epochs: Some(4),
                    ..CellOverrides::default()
                },
            )
        };

        // Cold: both stages compute and publish artifacts.
        let cold = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)));
        let group = group_of(&cold);
        assert!(cold.run_cells(&group.keys).is_ok());
        let stats = cold.stats();
        assert_eq!(stats.store_computed, 2, "clean + attack each published");
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_degraded, 0);
        assert!(stats.summary().contains("store: 0 hits, 2 computed"));
        let artifacts = fs::read_dir(&root)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".art"))
            .count();
        assert_eq!(artifacts, 2);

        // Warm (a fresh runner, conceptually a fresh process): both stages
        // are served from the store, bit-identically.
        let warm = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)));
        let group_warm = group_of(&warm);
        assert_eq!(group.keys, group_warm.keys);
        assert!(warm.run_cells(&group_warm.keys).is_ok());
        let stats = warm.stats();
        assert_eq!(stats.store_hits, 2, "clean + attack both served");
        assert_eq!(stats.store_computed, 0);
        for key in &group.keys {
            let a = cold.result(key).unwrap();
            let b = warm.result(key).unwrap();
            assert_eq!(a.c_cta.to_bits(), b.c_cta.to_bits());
            assert_eq!(a.cta.to_bits(), b.cta.to_bits());
            assert_eq!(a.c_asr.to_bits(), b.c_asr.to_bits());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits());
            assert_eq!(a.asr_nodes, b.asr_nodes);
        }

        // Bumping the condensation epoch invalidates the clean stage AND
        // the downstream attack stage (the attack key chains the epoch),
        // but the cell key changes too, so this runner recomputes both.
        let bumped_epochs = CodeEpochs {
            condense: CodeEpochs::default().condense + 1,
            ..CodeEpochs::default()
        };
        let bumped = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)))
            .with_code_epochs(bumped_epochs);
        let group_bumped = group_of(&bumped);
        assert_ne!(group.keys[0].canon(), group_bumped.keys[0].canon());
        assert!(bumped.run_cells(&group_bumped.keys).is_ok());
        let stats = bumped.stats();
        assert_eq!(stats.store_hits, 0, "old artifacts must not be served");
        assert_eq!(stats.store_computed, 2, "both stages recomputed");

        // Bumping only the attack epoch leaves the clean artifact valid:
        // exactly the attack stage (and nothing upstream) recomputes.
        let attack_bumped = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)))
            .with_code_epochs(CodeEpochs {
                attack: CodeEpochs::default().attack + 1,
                ..CodeEpochs::default()
            });
        let group_attack = group_of(&attack_bumped);
        assert!(attack_bumped.run_cells(&group_attack.keys).is_ok());
        let stats = attack_bumped.stats();
        assert_eq!(stats.store_hits, 1, "clean artifact still serves");
        assert_eq!(stats.store_computed, 1, "only the attack recomputed");

        // A read-only/unusable store degrades to in-process compute without
        // failing the grid.
        let file_as_root =
            std::env::temp_dir().join(format!("bgc-store-rt-file-{}", std::process::id()));
        fs::write(&file_as_root, b"not a directory").unwrap();
        let degraded = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&file_as_root)));
        let group_degraded = group_of(&degraded);
        assert!(degraded.run_cells(&group_degraded.keys).is_ok());
        let stats = degraded.stats();
        assert_eq!(stats.store_degraded, 2, "both stages degraded");
        assert_eq!(stats.store_hits + stats.store_computed, 0);
        let a = cold.result(&group.keys[0]).unwrap();
        let b = degraded.result(&group_degraded.keys[0]).unwrap();
        assert_eq!(a.cta.to_bits(), b.cta.to_bits(), "degraded == computed");
        assert_eq!(a.asr.to_bits(), b.asr.to_bits());

        let _ = fs::remove_file(&file_as_root);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_store_artifacts_are_quarantined_and_recomputed() {
        use bgc_store::Store;

        let root = std::env::temp_dir().join(format!("bgc-store-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let group_of = |runner: &Runner| {
            runner.group(
                DatasetKind::Cora,
                CondensationKind::GCondX,
                AttackKind::Bgc,
                0.026,
                EvalKind::Standard,
                CellOverrides {
                    outer_epochs: Some(4),
                    ..CellOverrides::default()
                },
            )
        };
        let seed = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)));
        let group = group_of(&seed);
        assert!(seed.run_cells(&group.keys).is_ok());

        // Truncate every artifact mid-payload.
        let mut originals = BTreeMap::new();
        for entry in fs::read_dir(&root).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".art") {
                let bytes = fs::read(entry.path()).unwrap();
                fs::write(entry.path(), &bytes[..bytes.len() / 2]).unwrap();
                originals.insert(name, bytes);
            }
        }
        assert_eq!(originals.len(), 2);

        let healed = Runner::in_memory(ExperimentScale::Quick)
            .serial()
            .with_store(Some(Store::open(&root)));
        let group_healed = group_of(&healed);
        assert!(healed.run_cells(&group_healed.keys).is_ok());
        let stats = healed.stats();
        assert_eq!(stats.store_computed, 2, "corrupt artifacts recomputed");
        assert_eq!(stats.store_hits, 0);
        for key in &group.keys {
            let a = seed.result(key).unwrap();
            let b = healed.result(key).unwrap();
            assert_eq!(a.cta.to_bits(), b.cta.to_bits());
            assert_eq!(a.asr.to_bits(), b.asr.to_bits());
        }
        // The re-published artifacts are byte-identical to the originals and
        // the corrupt bytes were kept for inspection.
        for (name, bytes) in &originals {
            assert_eq!(&fs::read(root.join(name)).unwrap(), bytes, "{}", name);
            assert!(root.join(format!("{}.corrupt", name)).exists(), "{}", name);
        }

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn persist_failures_surface_without_failing_the_cell() {
        use bgc_runtime::{FaultAction, FaultSpec};

        let dir = std::env::temp_dir().join(format!("bgc-persist-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let runner = Runner::with_cache_dir(ExperimentScale::Quick, Some(dir.clone()))
            .serial()
            .with_fault_plan(
                FaultPlan::new().with(FaultSpec::new("runner.persist", FaultAction::IoError)),
            );
        let group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            AttackKind::Bgc,
            0.026,
            EvalKind::Standard,
            CellOverrides {
                outer_epochs: Some(4),
                ..CellOverrides::default()
            },
        );
        let report = runner.run_cells(&group.keys);
        // The cell itself succeeded; only its persistence failed.
        assert!(report.is_ok());
        assert_eq!(report.persist_failures(), 1);
        assert!(report.outcomes[0].persist_error.is_some());
        assert_eq!(runner.stats().persist_failures, 1);
        assert!(runner.result(&group.keys[0]).is_ok());
        // The atomic-rename protocol left neither a live file nor a temp
        // file behind.
        let path = dir.join(group.keys[0].file_name());
        assert!(!path.exists());
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .map(|entries| entries.flatten().collect())
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "no partial/tmp files: {:?}",
            leftovers
        );

        let _ = fs::remove_dir_all(&dir);
    }
}
