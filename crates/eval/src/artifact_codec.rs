//! Binary codecs for the artifacts the runner persists in the
//! content-addressed store: clean condensed graphs and attack outputs
//! (condensed graph + trigger-provider snapshot).
//!
//! The encoding is fixed-width little-endian with `f32` values carried by
//! their IEEE-754 bits, so a decoded artifact is bit-identical to the
//! encoded one and cold/warm/cross-process runs produce the same bytes.
//! Decoders are total: every length and tag is validated and any
//! malformation returns `None` (the store treats that as corruption and
//! recomputes) — they never panic on attacker- or crash-shaped input.
//!
//! Attack artifacts are only encodable when their trigger provider is
//! snapshottable ([`bgc_core::TriggerProvider::snapshot`]); third-party
//! providers without a snapshot simply stay process-local.

use std::sync::Arc;

use bgc_core::{AttackArtifacts, GeneratorKind, GeneratorSnapshot, TriggerSnapshot};
use bgc_graph::CondensedGraph;
use bgc_tensor::Matrix;

/// Format version embedded in every encoded artifact; bump on layout
/// changes so stale artifacts fail decoding and recompute.
const CODEC_VERSION: u32 = 1;

/// Provider tag: BGC's adaptive generator.
const TAG_GENERATOR: u8 = 1;
/// Provider tag: a universal (sample-agnostic) trigger block.
const TAG_UNIVERSAL: u8 = 2;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.data() {
        put_f32(out, v);
    }
}

fn put_labels(out: &mut Vec<u8>, labels: &[usize]) {
    put_u64(out, labels.len() as u64);
    for &l in labels {
        put_u64(out, l as u64);
    }
}

// ---------------------------------------------------------------------------
// Primitive readers (total: every read is bounds-checked)
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over an artifact payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(s);
            u32::from_le_bytes(buf)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(s);
            u64::from_le_bytes(buf)
        })
    }

    /// Bytes not yet consumed (`pos` never exceeds the payload length).
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// A `u64` length field that must fit in `usize` and describe at most
    /// the remaining payload (each element is at least one byte), so a
    /// corrupt length can never trigger a huge allocation.
    fn len(&mut self) -> Option<usize> {
        let v = usize::try_from(self.u64()?).ok()?;
        (v <= self.remaining()).then_some(v)
    }

    fn f32(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    fn matrix(&mut self) -> Option<Matrix> {
        let rows = usize::try_from(self.u64()?).ok()?;
        let cols = usize::try_from(self.u64()?).ok()?;
        let count = rows.checked_mul(cols)?;
        // 4 bytes per element must be available before allocating.
        if count.checked_mul(4)? > self.remaining() {
            return None;
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(self.f32()?);
        }
        Some(Matrix::new(rows, cols, data))
    }

    fn labels(&mut self) -> Option<Vec<usize>> {
        let n = self.len()?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(usize::try_from(self.u64()?).ok()?);
        }
        Some(labels)
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Condensed graphs
// ---------------------------------------------------------------------------

fn put_condensed(out: &mut Vec<u8>, g: &CondensedGraph) {
    put_u64(out, g.num_classes as u64);
    put_matrix(out, &g.features);
    put_matrix(out, &g.adjacency);
    put_labels(out, &g.labels);
}

fn read_condensed(cur: &mut Cursor<'_>) -> Option<CondensedGraph> {
    let num_classes = usize::try_from(cur.u64()?).ok()?;
    let features = cur.matrix()?;
    let adjacency = cur.matrix()?;
    let labels = cur.labels()?;
    // `CondensedGraph::new` asserts these invariants; check them here so a
    // corrupt payload decodes to `None` instead of panicking.
    let n = features.rows();
    if adjacency.shape() != (n, n) || labels.len() != n {
        return None;
    }
    if !labels.iter().all(|&l| l < num_classes) {
        return None;
    }
    Some(CondensedGraph::new(
        features,
        adjacency,
        labels,
        num_classes,
    ))
}

/// Encodes a clean condensed graph for the store.
pub fn encode_condensed(g: &CondensedGraph) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, CODEC_VERSION);
    put_condensed(&mut out, g);
    out
}

/// Decodes a clean condensed graph; `None` on any malformation.
pub fn decode_condensed(bytes: &[u8]) -> Option<CondensedGraph> {
    let mut cur = Cursor::new(bytes);
    if cur.u32()? != CODEC_VERSION {
        return None;
    }
    let g = read_condensed(&mut cur)?;
    cur.finished().then_some(g)
}

// ---------------------------------------------------------------------------
// Attack artifacts
// ---------------------------------------------------------------------------

fn kind_tag(kind: GeneratorKind) -> u8 {
    match kind {
        GeneratorKind::Mlp => 0,
        GeneratorKind::Gcn => 1,
        GeneratorKind::Transformer => 2,
    }
}

fn kind_from_tag(tag: u8) -> Option<GeneratorKind> {
    match tag {
        0 => Some(GeneratorKind::Mlp),
        1 => Some(GeneratorKind::Gcn),
        2 => Some(GeneratorKind::Transformer),
        _ => None,
    }
}

fn put_snapshot(out: &mut Vec<u8>, snap: &TriggerSnapshot) {
    match snap {
        TriggerSnapshot::Generator(g) => {
            out.push(TAG_GENERATOR);
            out.push(kind_tag(g.kind));
            put_u64(out, g.trigger_size as u64);
            put_u64(out, g.feat_dim as u64);
            put_u64(out, g.hidden as u64);
            put_f32(out, g.feature_scale);
            put_u64(out, g.matrices.len() as u64);
            for m in &g.matrices {
                put_matrix(out, m);
            }
        }
        TriggerSnapshot::Universal(features) => {
            out.push(TAG_UNIVERSAL);
            put_matrix(out, features);
        }
    }
}

fn read_snapshot(cur: &mut Cursor<'_>) -> Option<TriggerSnapshot> {
    match cur.u8()? {
        TAG_GENERATOR => {
            let kind = kind_from_tag(cur.u8()?)?;
            let trigger_size = usize::try_from(cur.u64()?).ok()?;
            let feat_dim = usize::try_from(cur.u64()?).ok()?;
            let hidden = usize::try_from(cur.u64()?).ok()?;
            let feature_scale = cur.f32()?;
            let count = cur.len()?;
            let mut matrices = Vec::with_capacity(count);
            for _ in 0..count {
                matrices.push(cur.matrix()?);
            }
            Some(TriggerSnapshot::Generator(GeneratorSnapshot {
                kind,
                trigger_size,
                feat_dim,
                hidden,
                feature_scale,
                matrices,
            }))
        }
        TAG_UNIVERSAL => Some(TriggerSnapshot::Universal(cur.matrix()?)),
        _ => None,
    }
}

/// Encodes attack artifacts (poisoned condensed graph + trigger provider)
/// for the store.  Returns `None` when the provider is not snapshottable —
/// the artifact then stays process-local instead of being persisted.
pub fn encode_attack(artifacts: &AttackArtifacts) -> Option<Vec<u8>> {
    let snap = artifacts.provider.snapshot()?;
    let mut out = Vec::new();
    put_u32(&mut out, CODEC_VERSION);
    put_condensed(&mut out, &artifacts.condensed);
    put_snapshot(&mut out, &snap);
    Some(out)
}

/// Decodes attack artifacts; `None` on any malformation (including a
/// structurally invalid provider snapshot).
pub fn decode_attack(bytes: &[u8]) -> Option<AttackArtifacts> {
    let mut cur = Cursor::new(bytes);
    if cur.u32()? != CODEC_VERSION {
        return None;
    }
    let condensed = read_condensed(&mut cur)?;
    let snapshot = read_snapshot(&mut cur)?;
    if !cur.finished() {
        return None;
    }
    let provider = snapshot.into_provider()?;
    Some(AttackArtifacts {
        condensed: Arc::new(condensed),
        provider,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_core::{TriggerGenerator, TriggerProvider, UniversalTrigger};
    use bgc_tensor::init::{randn, rng_from_seed};

    fn toy_condensed() -> CondensedGraph {
        let mut rng = rng_from_seed(11);
        let features = randn(5, 7, 0.0, 1.0, &mut rng);
        let adjacency = randn(5, 5, 0.0, 0.3, &mut rng);
        CondensedGraph::new(features, adjacency, vec![0, 1, 2, 0, 1], 3)
    }

    #[test]
    fn condensed_round_trip_is_bit_exact() {
        let g = toy_condensed();
        let bytes = encode_condensed(&g);
        let decoded = decode_condensed(&bytes).expect("valid payload decodes");
        assert!(decoded.features.approx_eq(&g.features, 0.0));
        assert!(decoded.adjacency.approx_eq(&g.adjacency, 0.0));
        assert_eq!(decoded.labels, g.labels);
        assert_eq!(decoded.num_classes, g.num_classes);
        // Encoding is deterministic: the store's byte-identity guarantees
        // rest on this.
        assert_eq!(bytes, encode_condensed(&decoded));
    }

    #[test]
    fn attack_round_trip_preserves_provider_behaviour() {
        use bgc_nn::AdjacencyRef;
        use bgc_tensor::CsrMatrix;

        let adj = AdjacencyRef::sparse(
            CsrMatrix::from_edges(6, &[(0, 1), (1, 2), (2, 3)])
                .symmetrize()
                .gcn_normalize(),
        );
        let mut rng = rng_from_seed(12);
        let graph_features = randn(6, 7, 0.0, 1.0, &mut rng);

        for kind in GeneratorKind::all() {
            let mut rng = rng_from_seed(13);
            let gen = TriggerGenerator::new(kind, 7, 8, 3, &mut rng);
            let reference = gen.trigger_for(&adj, &graph_features, 2);
            let artifacts = AttackArtifacts {
                condensed: Arc::new(toy_condensed()),
                provider: Arc::new(gen),
            };
            let bytes = encode_attack(&artifacts).expect("generator is snapshottable");
            let decoded = decode_attack(&bytes).expect("valid payload decodes");
            let replayed = decoded.provider.trigger_for(&adj, &graph_features, 2);
            assert!(
                reference.approx_eq(&replayed, 0.0),
                "{}: decoded provider must be bit-identical",
                kind.name()
            );
        }

        let universal = AttackArtifacts {
            condensed: Arc::new(toy_condensed()),
            provider: Arc::new(UniversalTrigger::new(randn(4, 7, 0.0, 1.0, &mut rng))),
        };
        let bytes = encode_attack(&universal).expect("universal trigger is snapshottable");
        let decoded = decode_attack(&bytes).expect("valid payload decodes");
        assert!(decoded
            .provider
            .trigger_for(&adj, &graph_features, 0)
            .approx_eq(
                &universal.provider.trigger_for(&adj, &graph_features, 0),
                0.0
            ));
    }

    #[test]
    fn corrupt_payloads_decode_to_none_not_panic() {
        let g = toy_condensed();
        let bytes = encode_condensed(&g);
        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            assert!(decode_condensed(&bytes[..cut]).is_none(), "cut {}", cut);
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_condensed(&long).is_none());
        // A label pushed out of range.
        let mut bad = bytes.clone();
        let len = bad.len();
        bad[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_condensed(&bad).is_none());
        // Version bump.
        let mut stale = bytes.clone();
        stale[0] = 99;
        assert!(decode_condensed(&stale).is_none());

        let artifacts = AttackArtifacts {
            condensed: Arc::new(g),
            provider: Arc::new(UniversalTrigger::new(Matrix::ones(2, 7))),
        };
        let bytes = encode_attack(&artifacts).expect("encodable");
        for cut in 0..bytes.len() {
            assert!(decode_attack(&bytes[..cut]).is_none(), "cut {}", cut);
        }
        // An unknown provider tag.
        let mut bad_tag = bytes.clone();
        // The provider tag sits right after the condensed-graph block; find
        // it by re-encoding the condensed part.
        let prefix = {
            let mut out = Vec::new();
            put_u32(&mut out, CODEC_VERSION);
            put_condensed(&mut out, &artifacts.condensed);
            out.len()
        };
        bad_tag[prefix] = 99;
        assert!(decode_attack(&bad_tag).is_none());
    }
}
