//! The evaluation protocol shared by every table and figure: run an attack,
//! condense a clean reference, train victims, and report C-CTA / CTA /
//! C-ASR / ASR aggregated over repetitions (mean and standard deviation), as
//! in Table II of the paper.

use std::sync::Arc;

use serde::Serialize;

use bgc_condense::{CondensationKind, CondenseError};
use bgc_core::{
    evaluate_backdoor, evaluate_clean_reference, BgcAttack, BgcConfig, EvaluationOptions,
    TriggerProvider, VictimSpec,
};
use bgc_graph::{CondensedGraph, DatasetKind, Graph};
use bgc_nn::mean_std;

use crate::scale::ExperimentScale;

/// Which attack is being evaluated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// The paper's attack.
    Bgc,
    /// BGC with random poisoned-node selection (Figure 5).
    BgcRand,
    /// Naive direct injection into the condensed graph (Figure 1).
    NaivePoison,
    /// GTA adapted to condensation (Figure 4).
    Gta,
    /// DOORPING adapted to condensation (Figure 4).
    Doorping,
}

impl AttackKind {
    /// Display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Bgc => "BGC",
            AttackKind::BgcRand => "BGC_Rand",
            AttackKind::NaivePoison => "NaivePoison",
            AttackKind::Gta => "GTA",
            AttackKind::Doorping => "DOORPING",
        }
    }
}

/// One experiment configuration (a cell of Table II, or one point of a
/// figure).
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack.
    pub method: CondensationKind,
    /// Condensation ratio `r` (paper-scale value; the quick scale rescales
    /// it internally).
    pub ratio: f32,
    /// Attack to run.
    pub attack: AttackKind,
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
}

impl RunSpec {
    /// A BGC run spec with the defaults of the paper.
    pub fn bgc(
        dataset: DatasetKind,
        method: CondensationKind,
        ratio: f32,
        scale: ExperimentScale,
    ) -> Self {
        Self {
            dataset,
            method,
            ratio,
            attack: AttackKind::Bgc,
            scale,
            seed: 17,
        }
    }
}

/// Aggregated metrics of one experiment configuration (means and standard
/// deviations over the repetitions), mirroring a Table II cell.
#[derive(Clone, Debug, Serialize)]
pub struct RunMetrics {
    /// Dataset name.
    pub dataset: String,
    /// Condensation method name.
    pub method: String,
    /// Attack name.
    pub attack: String,
    /// Condensation ratio.
    pub ratio: f32,
    /// Clean-model clean test accuracy (mean).
    pub c_cta: f32,
    /// Clean-model CTA standard deviation.
    pub c_cta_std: f32,
    /// Backdoored-model clean test accuracy (mean).
    pub cta: f32,
    /// Backdoored-model CTA standard deviation.
    pub cta_std: f32,
    /// Clean-model attack success rate (mean).
    pub c_asr: f32,
    /// Clean-model ASR standard deviation.
    pub c_asr_std: f32,
    /// Backdoored-model attack success rate (mean).
    pub asr: f32,
    /// Backdoored-model ASR standard deviation.
    pub asr_std: f32,
    /// Whether the condensation method reported out-of-memory (GC-SNTK on
    /// Reddit).
    pub oom: bool,
}

impl RunMetrics {
    /// An OOM placeholder row.
    pub fn oom(spec: &RunSpec) -> Self {
        Self {
            dataset: spec.dataset.name().to_string(),
            method: spec.method.name().to_string(),
            attack: spec.attack.name().to_string(),
            ratio: spec.ratio,
            c_cta: 0.0,
            c_cta_std: 0.0,
            cta: 0.0,
            cta_std: 0.0,
            c_asr: 0.0,
            c_asr_std: 0.0,
            asr: 0.0,
            asr_std: 0.0,
            oom: true,
        }
    }

    /// Aggregates per-repetition measurements into the paper's
    /// `mean (std)` cell (sample standard deviation over the repetitions).
    #[allow(clippy::too_many_arguments)]
    pub fn from_repetitions(
        dataset: &str,
        method: &str,
        attack: &str,
        ratio: f32,
        c_ctas: &[f32],
        ctas: &[f32],
        c_asrs: &[f32],
        asrs: &[f32],
    ) -> Self {
        let (c_cta, c_cta_std) = mean_std(c_ctas);
        let (cta, cta_std) = mean_std(ctas);
        let (c_asr, c_asr_std) = mean_std(c_asrs);
        let (asr, asr_std) = mean_std(asrs);
        Self {
            dataset: dataset.to_string(),
            method: method.to_string(),
            attack: attack.to_string(),
            ratio,
            c_cta,
            c_cta_std,
            cta,
            cta_std,
            c_asr,
            c_asr_std,
            asr,
            asr_std,
            oom: false,
        }
    }

    /// Renders the row in the paper's `value (std)` percent format.
    pub fn table_row(&self) -> String {
        if self.oom {
            return format!(
                "{:<10} {:<9} {:<11} {:>6.2}%   OOM",
                self.dataset,
                self.method,
                self.attack,
                self.ratio * 100.0
            );
        }
        format!(
            "{:<10} {:<9} {:<11} {:>6.2}%   C-CTA {:>6.2} ({:>4.2})  CTA {:>6.2} ({:>4.2})  C-ASR {:>6.2} ({:>4.2})  ASR {:>6.2} ({:>4.2})",
            self.dataset,
            self.method,
            self.attack,
            self.ratio * 100.0,
            self.c_cta * 100.0,
            self.c_cta_std * 100.0,
            self.cta * 100.0,
            self.cta_std * 100.0,
            self.c_asr * 100.0,
            self.c_asr_std * 100.0,
            self.asr * 100.0,
            self.asr_std * 100.0
        )
    }
}

/// Per-repetition raw measurements.
struct RepetitionOutcome {
    c_cta: f32,
    cta: f32,
    c_asr: f32,
    asr: f32,
}

/// Output of the attack stage of one experiment cell: the poisoned condensed
/// graph plus the trigger provider used against victims at test time.  The
/// grid runner ([`crate::runner`]) caches and shares these across cells, so
/// everything inside is immutable and behind `Arc`.
#[derive(Clone)]
pub struct AttackArtifacts {
    /// The poisoned condensed graph handed to the victim.
    pub condensed: Arc<CondensedGraph>,
    /// The trigger provider evaluated against the victim.
    pub provider: Arc<dyn TriggerProvider + Send + Sync>,
}

/// Clean-reference condensation stage: condenses the unpoisoned graph with
/// the method under attack (shared by every attack on the same cell
/// coordinates).
pub fn clean_stage(
    graph: &Graph,
    method: CondensationKind,
    config: &BgcConfig,
) -> Result<CondensedGraph, CondenseError> {
    method.build().condense(graph, &config.condensation)
}

/// Attack stage: runs `attack` against `method` on `graph` and returns the
/// poisoned condensed graph plus the test-time trigger provider.  The Naive
/// Poison baseline injects directly into the clean condensed graph, hence the
/// `clean` argument — it must be `Some` for [`AttackKind::NaivePoison`] and
/// is ignored by every other attack.
pub fn attack_stage(
    attack: AttackKind,
    method: CondensationKind,
    graph: &Graph,
    config: &BgcConfig,
    clean: Option<&CondensedGraph>,
) -> Result<AttackArtifacts, CondenseError> {
    let (condensed, provider): (_, Arc<dyn TriggerProvider + Send + Sync>) = match attack {
        AttackKind::Bgc => {
            let outcome = BgcAttack::new(config.clone()).run(graph, method)?;
            (outcome.condensed, Arc::new(outcome.generator))
        }
        AttackKind::BgcRand => {
            let rand_config = bgc_core::randomized_selection(config);
            let outcome = BgcAttack::new(rand_config).run(graph, method)?;
            (outcome.condensed, Arc::new(outcome.generator))
        }
        AttackKind::NaivePoison => {
            let naive = bgc_core::baselines::NaivePoisonAttack::new(
                bgc_core::baselines::naive_poison::NaivePoisonConfig {
                    target_class: config.target_class,
                    trigger_size: config.trigger_size,
                    poison_fraction: 0.3,
                    seed: config.seed,
                },
            );
            let clean = clean.expect("the Naive Poison attack needs the clean condensed graph");
            let outcome = naive.poison_condensed(clean, graph.num_features());
            (outcome.condensed, Arc::new(outcome.trigger))
        }
        AttackKind::Gta => {
            let outcome = bgc_core::baselines::GtaAttack::new(config.clone()).run(graph, method)?;
            (outcome.condensed, Arc::new(outcome.generator))
        }
        AttackKind::Doorping => {
            let outcome =
                bgc_core::baselines::DoorpingAttack::new(config.clone()).run(graph, method)?;
            (outcome.condensed, Arc::new(outcome.trigger))
        }
    };
    Ok(AttackArtifacts {
        condensed: Arc::new(condensed),
        provider,
    })
}

fn run_once(
    spec: &RunSpec,
    graph: &Graph,
    config: &BgcConfig,
    victim: &VictimSpec,
    options: &EvaluationOptions,
) -> Result<RepetitionOutcome, CondenseError> {
    // Clean reference condensation (shared by every attack).
    let clean = clean_stage(graph, spec.method, config)?;
    let artifacts = attack_stage(spec.attack, spec.method, graph, config, Some(&clean))?;
    let backdoored = evaluate_backdoor(
        graph,
        &artifacts.condensed,
        artifacts.provider.as_ref(),
        config,
        victim,
        options,
    );
    let reference = evaluate_clean_reference(
        graph,
        &clean,
        artifacts.provider.as_ref(),
        config,
        victim,
        options,
    );
    Ok(RepetitionOutcome {
        c_cta: reference.cta,
        cta: backdoored.cta,
        c_asr: reference.asr,
        asr: backdoored.asr,
    })
}

/// Runs one experiment configuration for the scale's number of repetitions
/// and aggregates the metrics.  GC-SNTK OOM conditions are reported as an
/// `oom` row rather than an error, matching Table II.
pub fn run_spec(spec: &RunSpec) -> RunMetrics {
    run_spec_with(spec, |_, _| {})
}

/// Same as [`run_spec`] but lets the caller tweak the attack configuration
/// (used by the ablation experiments: trigger size, generator kind, layer
/// count, poisoning ratio, epoch sweeps...).
pub fn run_spec_with(
    spec: &RunSpec,
    customize: impl Fn(&mut BgcConfig, &mut VictimSpec),
) -> RunMetrics {
    let mut c_ctas = Vec::new();
    let mut ctas = Vec::new();
    let mut c_asrs = Vec::new();
    let mut asrs = Vec::new();
    for rep in 0..spec.scale.repetitions() {
        let seed = spec.seed + rep as u64;
        let graph = spec.scale.load(spec.dataset, seed);
        let mut config = spec.scale.bgc_config(spec.dataset, spec.ratio, seed);
        let mut victim = spec.scale.victim_spec();
        customize(&mut config, &mut victim);
        let options = spec.scale.evaluation_options(seed);
        match run_once(spec, &graph, &config, &victim, &options) {
            Ok(outcome) => {
                c_ctas.push(outcome.c_cta);
                ctas.push(outcome.cta);
                c_asrs.push(outcome.c_asr);
                asrs.push(outcome.asr);
            }
            Err(CondenseError::OutOfMemory { .. }) => return RunMetrics::oom(spec),
            Err(err) => panic!("experiment {:?} failed: {}", spec, err),
        }
    }
    RunMetrics::from_repetitions(
        spec.dataset.name(),
        spec.method.name(),
        spec.attack.name(),
        spec.ratio,
        &c_ctas,
        &ctas,
        &c_asrs,
        &asrs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgc_run_reproduces_the_headline_shape() {
        // One quick-scale Table II cell: BGC on Cora with GCond-X.
        let spec = RunSpec::bgc(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            0.026,
            ExperimentScale::Quick,
        );
        let metrics = run_spec(&spec);
        assert!(!metrics.oom);
        assert!(
            metrics.asr > 0.7,
            "BGC should reach a high ASR, got {}",
            metrics.asr
        );
        assert!(
            metrics.asr > metrics.c_asr + 0.3,
            "backdoored ASR ({}) must clearly exceed the clean model's ASR ({})",
            metrics.asr,
            metrics.c_asr
        );
        assert!(
            metrics.cta > metrics.c_cta - 0.25,
            "the CTA drop must stay bounded ({} vs {})",
            metrics.cta,
            metrics.c_cta
        );
        assert!(metrics.table_row().contains("cora"));
    }

    #[test]
    fn oom_rows_render_as_oom() {
        let spec = RunSpec::bgc(
            DatasetKind::Reddit,
            CondensationKind::GcSntk,
            0.001,
            ExperimentScale::Quick,
        );
        let row = RunMetrics::oom(&spec).table_row();
        assert!(row.contains("OOM"));
    }
}
