//! The evaluation protocol shared by every table and figure: run an attack,
//! condense a clean reference, train victims, and report C-CTA / CTA /
//! C-ASR / ASR aggregated over repetitions (mean and standard deviation), as
//! in Table II of the paper.
//!
//! Attacks and condensation methods are resolved from the open registries
//! ([`bgc_core::resolve_attack`], [`bgc_condense::resolve_condenser`]) and
//! dispatched through trait objects, so registering a new attack or method
//! never touches this crate.

use serde::Serialize;

use bgc_condense::{resolve_condenser, CondensationMethod, MethodId};
use bgc_core::{
    evaluate_backdoor, evaluate_clean_reference, resolve_attack, Attack, AttackId, BgcConfig,
    BgcError, EvaluationOptions, VictimSpec,
};
use bgc_graph::{CondensedGraph, DatasetKind, Graph};
use bgc_nn::mean_std;

use crate::scale::ExperimentScale;

pub use bgc_core::{AttackArtifacts, AttackKind};

/// One experiment configuration (a cell of Table II, or one point of a
/// figure).
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack (registry name).
    pub method: MethodId,
    /// Condensation ratio `r` (paper-scale value; the quick scale rescales
    /// it internally).
    pub ratio: f32,
    /// Attack to run (registry name).
    pub attack: AttackId,
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
}

impl RunSpec {
    /// A BGC run spec with the defaults of the paper.
    pub fn bgc(
        dataset: DatasetKind,
        method: impl Into<MethodId>,
        ratio: f32,
        scale: ExperimentScale,
    ) -> Self {
        Self {
            dataset,
            method: method.into(),
            ratio,
            attack: AttackKind::Bgc.into(),
            scale,
            seed: 17,
        }
    }
}

/// Aggregated metrics of one experiment configuration (means and standard
/// deviations over the repetitions), mirroring a Table II cell.
#[derive(Clone, Debug, Serialize)]
pub struct RunMetrics {
    /// Dataset name.
    pub dataset: String,
    /// Condensation method name.
    pub method: String,
    /// Attack name.
    pub attack: String,
    /// Condensation ratio.
    pub ratio: f32,
    /// Clean-model clean test accuracy (mean).
    pub c_cta: f32,
    /// Clean-model CTA standard deviation.
    pub c_cta_std: f32,
    /// Backdoored-model clean test accuracy (mean).
    pub cta: f32,
    /// Backdoored-model CTA standard deviation.
    pub cta_std: f32,
    /// Clean-model attack success rate (mean).
    pub c_asr: f32,
    /// Clean-model ASR standard deviation.
    pub c_asr_std: f32,
    /// Backdoored-model attack success rate (mean).
    pub asr: f32,
    /// Backdoored-model ASR standard deviation.
    pub asr_std: f32,
    /// Whether the condensation method reported out-of-memory (GC-SNTK on
    /// Reddit).
    pub oom: bool,
}

impl RunMetrics {
    /// An OOM placeholder row.
    pub fn oom(spec: &RunSpec) -> Self {
        Self {
            dataset: spec.dataset.to_string(),
            method: spec.method.to_string(),
            attack: spec.attack.to_string(),
            ratio: spec.ratio,
            c_cta: 0.0,
            c_cta_std: 0.0,
            cta: 0.0,
            cta_std: 0.0,
            c_asr: 0.0,
            c_asr_std: 0.0,
            asr: 0.0,
            asr_std: 0.0,
            oom: true,
        }
    }

    /// Aggregates per-repetition measurements into the paper's
    /// `mean (std)` cell (sample standard deviation over the repetitions).
    #[allow(clippy::too_many_arguments)]
    pub fn from_repetitions(
        dataset: &str,
        method: &str,
        attack: &str,
        ratio: f32,
        c_ctas: &[f32],
        ctas: &[f32],
        c_asrs: &[f32],
        asrs: &[f32],
    ) -> Self {
        let (c_cta, c_cta_std) = mean_std(c_ctas);
        let (cta, cta_std) = mean_std(ctas);
        let (c_asr, c_asr_std) = mean_std(c_asrs);
        let (asr, asr_std) = mean_std(asrs);
        Self {
            dataset: dataset.to_string(),
            method: method.to_string(),
            attack: attack.to_string(),
            ratio,
            c_cta,
            c_cta_std,
            cta,
            cta_std,
            c_asr,
            c_asr_std,
            asr,
            asr_std,
            oom: false,
        }
    }

    /// Renders the row in the paper's `value (std)` percent format.
    pub fn table_row(&self) -> String {
        if self.oom {
            return format!(
                "{:<10} {:<9} {:<11} {:>6.2}%   OOM",
                self.dataset,
                self.method,
                self.attack,
                self.ratio * 100.0
            );
        }
        format!(
            "{:<10} {:<9} {:<11} {:>6.2}%   C-CTA {:>6.2} ({:>4.2})  CTA {:>6.2} ({:>4.2})  C-ASR {:>6.2} ({:>4.2})  ASR {:>6.2} ({:>4.2})",
            self.dataset,
            self.method,
            self.attack,
            self.ratio * 100.0,
            self.c_cta * 100.0,
            self.c_cta_std * 100.0,
            self.cta * 100.0,
            self.cta_std * 100.0,
            self.c_asr * 100.0,
            self.c_asr_std * 100.0,
            self.asr * 100.0,
            self.asr_std * 100.0
        )
    }
}

/// Per-repetition raw measurements.
struct RepetitionOutcome {
    c_cta: f32,
    cta: f32,
    c_asr: f32,
    asr: f32,
}

/// Clean-reference condensation stage: condenses the unpoisoned graph with
/// the method under attack (shared by every attack on the same cell
/// coordinates).
pub fn clean_stage(
    graph: &Graph,
    method: &dyn CondensationMethod,
    config: &BgcConfig,
) -> Result<CondensedGraph, BgcError> {
    Ok(method.condense(graph, &config.condensation)?)
}

/// Attack stage: runs `attack` against `method` on `graph` and returns the
/// poisoned condensed graph plus the test-time trigger provider.  Attacks
/// that report [`Attack::needs_clean_reference`] (the Naive Poison baseline)
/// receive the clean condensed graph through `clean`; every other attack
/// ignores it.
pub fn attack_stage(
    attack: &dyn Attack,
    method: &dyn CondensationMethod,
    graph: &Graph,
    config: &BgcConfig,
    clean: Option<&CondensedGraph>,
) -> Result<AttackArtifacts, BgcError> {
    attack.run(graph, method, config, clean)
}

/// Resolves a spec's attack from the registry.
pub(crate) fn lookup_attack(id: &AttackId) -> Result<std::sync::Arc<dyn Attack>, BgcError> {
    resolve_attack(id.as_str()).ok_or_else(|| BgcError::UnknownAttack(id.to_string()))
}

/// Resolves a spec's condensation method from the registry.
pub(crate) fn lookup_method(
    id: &MethodId,
) -> Result<std::sync::Arc<dyn CondensationMethod>, BgcError> {
    resolve_condenser(id.as_str()).ok_or_else(|| BgcError::UnknownMethod(id.to_string()))
}

fn run_once(
    attack: &dyn Attack,
    method: &dyn CondensationMethod,
    graph: &Graph,
    config: &BgcConfig,
    victim: &VictimSpec,
    options: &EvaluationOptions,
) -> Result<RepetitionOutcome, BgcError> {
    // Clean reference condensation (shared by every attack).
    let clean = clean_stage(graph, method, config)?;
    let artifacts = attack_stage(attack, method, graph, config, Some(&clean))?;
    let backdoored = evaluate_backdoor(
        graph,
        &artifacts.condensed,
        artifacts.provider.as_ref(),
        config,
        victim,
        options,
    );
    let reference = evaluate_clean_reference(
        graph,
        &clean,
        artifacts.provider.as_ref(),
        config,
        victim,
        options,
    );
    Ok(RepetitionOutcome {
        c_cta: reference.cta,
        cta: backdoored.cta,
        c_asr: reference.asr,
        asr: backdoored.asr,
    })
}

/// Runs one experiment configuration for the scale's number of repetitions
/// and aggregates the metrics.  GC-SNTK OOM conditions are reported as an
/// `oom` row rather than an error, matching Table II; every other failure
/// (including unknown attack/method names) is a typed [`BgcError`].
pub fn run_spec(spec: &RunSpec) -> Result<RunMetrics, BgcError> {
    run_spec_with(spec, |_, _| {})
}

/// Same as [`run_spec`] but lets the caller tweak the attack configuration
/// (used by the ablation experiments: trigger size, generator kind, layer
/// count, poisoning ratio, epoch sweeps...).
pub fn run_spec_with(
    spec: &RunSpec,
    customize: impl Fn(&mut BgcConfig, &mut VictimSpec),
) -> Result<RunMetrics, BgcError> {
    let attack = lookup_attack(&spec.attack)?;
    let method = lookup_method(&spec.method)?;
    let mut c_ctas = Vec::new();
    let mut ctas = Vec::new();
    let mut c_asrs = Vec::new();
    let mut asrs = Vec::new();
    for rep in 0..spec.scale.repetitions() {
        let seed = spec.seed + rep as u64;
        let graph = spec.scale.load(spec.dataset, seed);
        let mut config = spec.scale.bgc_config(spec.dataset, spec.ratio, seed);
        let mut victim = spec.scale.victim_spec_for(spec.dataset);
        customize(&mut config, &mut victim);
        let options = spec.scale.evaluation_options_for(spec.dataset, seed);
        match run_once(
            attack.as_ref(),
            method.as_ref(),
            &graph,
            &config,
            &victim,
            &options,
        ) {
            Ok(outcome) => {
                c_ctas.push(outcome.c_cta);
                ctas.push(outcome.cta);
                c_asrs.push(outcome.c_asr);
                asrs.push(outcome.asr);
            }
            Err(err) if err.is_oom() => return Ok(RunMetrics::oom(spec)),
            Err(err) => return Err(err),
        }
    }
    Ok(RunMetrics::from_repetitions(
        spec.dataset.name(),
        spec.method.as_str(),
        spec.attack.as_str(),
        spec.ratio,
        &c_ctas,
        &ctas,
        &c_asrs,
        &asrs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_condense::CondensationKind;

    #[test]
    fn bgc_run_reproduces_the_headline_shape() {
        // One quick-scale Table II cell: BGC on Cora with GCond-X.
        let spec = RunSpec::bgc(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            0.026,
            ExperimentScale::Quick,
        );
        let metrics = run_spec(&spec).expect("spec runs");
        assert!(!metrics.oom);
        assert!(
            metrics.asr > 0.7,
            "BGC should reach a high ASR, got {}",
            metrics.asr
        );
        assert!(
            metrics.asr > metrics.c_asr + 0.3,
            "backdoored ASR ({}) must clearly exceed the clean model's ASR ({})",
            metrics.asr,
            metrics.c_asr
        );
        assert!(
            metrics.cta > metrics.c_cta - 0.25,
            "the CTA drop must stay bounded ({} vs {})",
            metrics.cta,
            metrics.c_cta
        );
        assert!(metrics.table_row().contains("cora"));
    }

    #[test]
    fn oom_rows_render_as_oom() {
        let spec = RunSpec::bgc(
            DatasetKind::Reddit,
            CondensationKind::GcSntk,
            0.001,
            ExperimentScale::Quick,
        );
        let row = RunMetrics::oom(&spec).table_row();
        assert!(row.contains("OOM"));
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let mut spec = RunSpec::bgc(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            0.026,
            ExperimentScale::Quick,
        );
        spec.attack = AttackId::new("Ghost");
        assert!(matches!(
            run_spec(&spec),
            Err(BgcError::UnknownAttack(name)) if name == "Ghost"
        ));
        let mut spec = RunSpec::bgc(
            DatasetKind::Cora,
            CondensationKind::GCondX,
            0.026,
            ExperimentScale::Quick,
        );
        spec.method = MethodId::new("Vapour");
        assert!(matches!(
            run_spec(&spec),
            Err(BgcError::UnknownMethod(name)) if name == "Vapour"
        ));
    }
}
