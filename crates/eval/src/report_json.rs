//! Shared JSON codec for grid reports.
//!
//! One serialization of [`CellStatus`] / [`CellOutcome`] / [`RunnerStats`]
//! used by both machine-readable surfaces of the workspace — the CLI's
//! `--format json` documents and the daemon protocol's streamed `cell`
//! frames — so a client reading either sees the same shapes.
//!
//! The cell sub-documents are deterministic (canonical key, status, result
//! values); execution metadata that legitimately varies between runs
//! (attempts, cache-hit counters, wall clock) is kept in separate fields so
//! callers can diff the deterministic part byte-for-byte across warm and
//! cold runs.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use bgc_runtime::relock;
use bgc_store::StoreReport;
use serde::Value;

use crate::runner::{CellOutcome, CellResult, CellStatus, Runner, RunnerStats, WaveObserver};

fn field(key: &str, value: Value) -> (String, Value) {
    (key.to_string(), value)
}

fn string(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

/// The status of one cell as a JSON object: `{"kind": "...", ...}` with a
/// `message` for failures/panics and a `limit_ms` for timeouts.
pub fn status_value(status: &CellStatus) -> Value {
    let mut fields = vec![field("kind", string(status.label()))];
    match status {
        CellStatus::Failed(err) => fields.push(field("message", string(err.to_string()))),
        CellStatus::Panicked { message } => fields.push(field("message", string(message.clone()))),
        CellStatus::TimedOut { limit_ms } => {
            fields.push(field("limit_ms", Value::Number(*limit_ms as f64)))
        }
        CellStatus::Ok | CellStatus::Oom | CellStatus::Skipped => {}
    }
    Value::Object(fields)
}

/// One cell of a report: canonical key, status, attempts, persist error and
/// (for completed cells) the measured [`CellResult`] values.
pub fn outcome_value(outcome: &CellOutcome, result: Option<&CellResult>) -> Value {
    let result_value = result
        .and_then(|r| serde_json::to_value(r).ok())
        .unwrap_or(Value::Null);
    Value::Object(vec![
        field("cell", string(outcome.key.canon())),
        field("status", status_value(&outcome.status)),
        field("attempts", Value::Number(outcome.attempts as f64)),
        field(
            "persist_error",
            match &outcome.persist_error {
                Some(reason) => string(reason.clone()),
                None => Value::Null,
            },
        ),
        field("result", result_value),
    ])
}

/// The runner's cache/execution counters as a JSON object.
pub fn stats_value(stats: &RunnerStats) -> Value {
    serde_json::to_value(stats).unwrap_or(Value::Null)
}

/// A [`StoreReport`] (from `bgc store stats|gc|doctor|clear` or the
/// daemon's store handling) as a JSON object.  One codec for both
/// surfaces, like [`stats_value`]; field order is fixed and the list
/// fields are sorted by the store, so rendering is deterministic.
pub fn store_report_value(report: &StoreReport) -> Value {
    let count = |n: usize| Value::Number(n as f64);
    let names =
        |list: &[String]| Value::Array(list.iter().map(|name| string(name.clone())).collect());
    Value::Object(vec![
        field("action", string(report.action.clone())),
        field("root", string(report.root.clone())),
        field("artifacts", count(report.artifacts)),
        field("bytes", Value::Number(report.bytes as f64)),
        field(
            "stages",
            Value::Object(
                report
                    .stages
                    .iter()
                    .map(|(stage, n)| (stage.clone(), count(*n)))
                    .collect(),
            ),
        ),
        field("locks", count(report.locks)),
        field("tmp_files", count(report.tmp_files)),
        field("corrupt", count(report.corrupt)),
        field("verified", count(report.verified)),
        field("removed", names(&report.removed)),
        field("quarantined", names(&report.quarantined)),
        field("healthy", Value::Bool(report.healthy())),
    ])
}

/// Collects every distinct cell outcome observed across the waves of one
/// invocation (first occurrence wins, in observation order).  Install it as
/// a wave observer via [`OutcomeCollector::observer`] and render the
/// collected cells with [`OutcomeCollector::cells_value`].
#[derive(Default)]
pub struct OutcomeCollector {
    state: Mutex<CollectorState>,
}

#[derive(Default)]
struct CollectorState {
    seen: BTreeSet<String>,
    cells: Vec<CellOutcome>,
}

impl OutcomeCollector {
    /// A fresh collector behind an [`Arc`] (the observer closure and the
    /// caller share it).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A wave observer recording every first-seen cell outcome.
    pub fn observer(self: &Arc<Self>) -> WaveObserver {
        let collector = Arc::clone(self);
        Arc::new(move |outcome| collector.record(outcome))
    }

    fn record(&self, outcome: &CellOutcome) {
        let mut state = relock(&self.state);
        if state.seen.insert(outcome.key.canon()) {
            state.cells.push(outcome.clone());
        }
    }

    /// Per-invocation tallies driving exit-code classification:
    /// `(completed, oom, failures)`.  Completed counts cells with a usable
    /// result (including OOM rows); failures count terminal
    /// failed/timed-out/panicked cells; skipped cells count as neither.
    pub fn counts(&self) -> (usize, usize, usize) {
        let state = relock(&self.state);
        let mut completed = 0;
        let mut oom = 0;
        let mut failures = 0;
        for outcome in &state.cells {
            match &outcome.status {
                CellStatus::Ok => completed += 1,
                CellStatus::Oom => {
                    completed += 1;
                    oom += 1;
                }
                CellStatus::Failed(_)
                | CellStatus::TimedOut { .. }
                | CellStatus::Panicked { .. } => failures += 1,
                CellStatus::Skipped => {}
            }
        }
        (completed, oom, failures)
    }

    /// Number of distinct cells collected so far.
    pub fn len(&self) -> usize {
        relock(&self.state).cells.len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The collected cells as a JSON array (results looked up from
    /// `runner`'s completed-cell map).
    pub fn cells_value(&self, runner: &Runner) -> Value {
        let state = relock(&self.state);
        Value::Array(
            state
                .cells
                .iter()
                .map(|outcome| outcome_value(outcome, runner.result(&outcome.key).ok().as_ref()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{enter_wave, CellOverrides, EvalKind, WaveCtx};
    use crate::scale::ExperimentScale;
    use bgc_core::BgcError;
    use bgc_graph::DatasetKind;
    use bgc_runtime::FaultPlan;

    #[test]
    fn status_values_carry_their_details() {
        assert_eq!(
            status_value(&CellStatus::Ok).to_json_string(),
            r#"{"kind":"ok"}"#
        );
        let timed_out = status_value(&CellStatus::TimedOut { limit_ms: 250 });
        assert_eq!(timed_out.get("limit_ms").and_then(Value::as_u64), Some(250));
        let failed = status_value(&CellStatus::Failed(BgcError::UnknownAttack("Ghost".into())));
        assert!(failed
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("Ghost")));
        let panicked = status_value(&CellStatus::Panicked {
            message: "boom".into(),
        });
        assert_eq!(
            panicked.get("kind").and_then(Value::as_str),
            Some("panicked")
        );
    }

    #[test]
    fn store_reports_render_through_the_shared_codec() {
        let mut report = StoreReport {
            action: "doctor".to_string(),
            root: "target/store".to_string(),
            artifacts: 2,
            bytes: 128,
            verified: 1,
            ..StoreReport::default()
        };
        report.stages.insert("clean".to_string(), 1);
        report.stages.insert("attack".to_string(), 1);
        report.quarantined.push("00000000deadbeef.art".to_string());
        let value = store_report_value(&report);
        assert_eq!(value.get("action").and_then(Value::as_str), Some("doctor"));
        assert_eq!(value.get("artifacts").and_then(Value::as_u64), Some(2));
        assert_eq!(
            value
                .get("stages")
                .and_then(|s| s.get("attack"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(value.get("healthy").and_then(Value::as_bool), Some(false));
        assert_eq!(
            value
                .get("quarantined")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(1)
        );
        // Deterministic: re-rendering the same report is byte-identical.
        assert_eq!(
            value.to_json_string(),
            store_report_value(&report).to_json_string()
        );
    }

    #[test]
    fn collector_records_each_cell_once_with_results() {
        let runner = Runner::in_memory(ExperimentScale::Quick)
            .with_fault_plan(FaultPlan::new())
            .serial();
        let group = runner.bgc_group(DatasetKind::Cora, "GCond", 0.026);
        let collector = OutcomeCollector::new();
        {
            let _scope = enter_wave(WaveCtx {
                observer: Some(collector.observer()),
                ..WaveCtx::default()
            });
            runner.run_cells(&group.keys);
            // A second wave over the same cells resolves from memory and
            // must not duplicate collected entries.
            runner.run_cells(&group.keys);
        }
        assert_eq!(collector.len(), group.keys.len());
        let (completed, oom, failures) = collector.counts();
        assert_eq!(completed, group.keys.len());
        assert_eq!((oom, failures), (0, 0));
        let cells = collector.cells_value(&runner);
        let cells = cells.as_array().expect("array");
        for cell in cells {
            assert_eq!(
                cell.get("status")
                    .and_then(|s| s.get("kind"))
                    .and_then(Value::as_str),
                Some("ok")
            );
            assert!(cell.get("result").and_then(|r| r.get("cta")).is_some());
        }
        // Deterministic sub-document: re-rendering is byte-identical.
        assert_eq!(
            collector.cells_value(&runner).to_json_string(),
            Value::Array(cells.clone()).to_json_string()
        );
        let _ = EvalKind::Standard;
        let _ = CellOverrides::default();
    }
}
