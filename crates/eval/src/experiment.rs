//! The typed experiment builder — the one construction path shared by the
//! grid runner, the CLI, the examples and external callers.
//!
//! ```no_run
//! use bgc_eval::{Experiment, ExperimentScale, Runner};
//! use bgc_graph::DatasetKind;
//!
//! let experiment = Experiment::builder()
//!     .dataset(DatasetKind::Cora)
//!     .attack("BGC")
//!     .method("GCond")
//!     .ratio(0.026)
//!     .build()
//!     .expect("valid experiment");
//! let runner = Runner::new(ExperimentScale::Quick);
//! let row = experiment.run(&runner).expect("experiment runs");
//! println!("{}", row.table_row());
//! ```
//!
//! `build()` validates everything that can be validated without running:
//! registry membership of the attack/method/defense names, ratio and knob
//! ranges, and directed-attack consistency.  The built [`Experiment`] lowers
//! to the existing [`CellKey`]/[`RunSpec`] grid coordinates, so
//! builder-driven runs share cache entries with the table/figure
//! regenerators bit-for-bit.

use bgc_condense::MethodId;
use bgc_core::{AttackId, BgcError, GeneratorKind};
use bgc_defense::DefenseId;
use bgc_graph::{DatasetKind, PoisonBudget};
use bgc_nn::{GnnArchitecture, TrainingPlan};

use crate::protocol::{lookup_attack, lookup_method, AttackKind, RunMetrics, RunSpec};
use crate::runner::{CellGroup, CellOverrides, EvalKind, Runner, DEFAULT_BASE_SEED};
use crate::scale::ExperimentScale;

/// A validated experiment description: one (dataset, method, attack, ratio,
/// eval mode, overrides) configuration at one scale.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Dataset under attack.
    pub dataset: DatasetKind,
    /// Condensation method under attack (registry name).
    pub method: MethodId,
    /// Attack to run (registry name).
    pub attack: AttackId,
    /// Condensation ratio.
    pub ratio: f32,
    /// Victim evaluation mode (standard or a registered defense).
    pub eval: EvalKind,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Deviations from the scale's baseline configuration.
    pub overrides: CellOverrides,
}

impl Experiment {
    /// Starts a builder with the defaults of the paper (BGC against GCond,
    /// quick scale, seed 17, standard evaluation).
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Lowers to the serial protocol's [`RunSpec`].
    pub fn to_run_spec(&self) -> RunSpec {
        RunSpec {
            dataset: self.dataset,
            method: self.method.clone(),
            ratio: self.ratio,
            attack: self.attack.clone(),
            scale: self.scale,
            seed: self.seed,
        }
    }

    /// Lowers to a grid-runner [`CellGroup`] (one key per repetition).  The
    /// runner must be at the experiment's scale.
    pub fn group(&self, runner: &Runner) -> Result<CellGroup, BgcError> {
        if runner.scale() != self.scale {
            return Err(BgcError::invalid(format!(
                "experiment is at {} scale but the runner is at {} scale",
                self.scale,
                runner.scale()
            )));
        }
        Ok(runner.group_seeded(
            self.dataset,
            self.method.clone(),
            self.attack.clone(),
            self.ratio,
            self.eval.clone(),
            self.overrides.clone(),
            self.seed,
        ))
    }

    /// Runs the experiment through the grid runner (parallel repetitions,
    /// stage sharing, disk cache) and aggregates the Table II-style row.
    pub fn run(&self, runner: &Runner) -> Result<RunMetrics, BgcError> {
        let group = self.group(runner)?;
        runner.metrics(&group)
    }
}

/// Builder for [`Experiment`]; see the module docs.
#[derive(Clone, Debug)]
pub struct ExperimentBuilder {
    scale: ExperimentScale,
    dataset: Option<DatasetKind>,
    method: MethodId,
    attack: AttackId,
    ratio: Option<f32>,
    eval: EvalKind,
    seed: u64,
    overrides: CellOverrides,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        Self {
            scale: ExperimentScale::Quick,
            dataset: None,
            method: bgc_condense::CondensationKind::GCond.into(),
            attack: AttackKind::Bgc.into(),
            ratio: None,
            eval: EvalKind::Standard,
            seed: DEFAULT_BASE_SEED,
            overrides: CellOverrides::default(),
        }
    }
}

impl ExperimentBuilder {
    /// Experiment scale (default: quick).
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = scale;
        self
    }

    /// Dataset under attack (required).
    pub fn dataset(mut self, dataset: DatasetKind) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Condensation method, by kind or registry name (default: GCond).
    pub fn method(mut self, method: impl Into<MethodId>) -> Self {
        self.method = method.into();
        self
    }

    /// Attack, by kind or registry name (default: BGC).
    pub fn attack(mut self, attack: impl Into<AttackId>) -> Self {
        self.attack = attack.into();
        self
    }

    /// Condensation ratio (default: the dataset's middle paper ratio).
    pub fn ratio(mut self, ratio: f32) -> Self {
        self.ratio = Some(ratio);
        self
    }

    /// Evaluate the victim through a registered defense (Table IV).
    pub fn defense(mut self, defense: impl Into<DefenseId>) -> Self {
        self.eval = EvalKind::Defended(defense.into());
        self
    }

    /// Evaluation mode, parsed/constructed directly (`standard` or a defense
    /// name).
    pub fn eval(mut self, eval: EvalKind) -> Self {
        self.eval = eval;
        self
    }

    /// Victim GNN architecture (Table III; default: the scale's GCN victim).
    pub fn victim(mut self, architecture: GnnArchitecture) -> Self {
        self.overrides.architecture = Some(architecture);
        self
    }

    /// Victim layer count (Table VIII).
    pub fn num_layers(mut self, layers: usize) -> Self {
        self.overrides.num_layers = Some(layers);
        self
    }

    /// Trigger-generator encoder (Table V).
    pub fn generator(mut self, generator: GeneratorKind) -> Self {
        self.overrides.generator = Some(generator);
        self
    }

    /// Trigger size (Figure 8).
    pub fn trigger_size(mut self, size: usize) -> Self {
        self.overrides.trigger_size = Some(size);
        self
    }

    /// Condensation epochs (Figure 6).
    pub fn outer_epochs(mut self, epochs: usize) -> Self {
        self.overrides.outer_epochs = Some(epochs);
        self
    }

    /// Poisoning budget (Table VII).
    pub fn poison_budget(mut self, budget: PoisonBudget) -> Self {
        self.overrides.poison_budget = Some(budget.into());
        self
    }

    /// Directed attack from this source class (Table VI).
    pub fn source_class(mut self, class: usize) -> Self {
        self.overrides.source_class = Some(class);
        self
    }

    /// Training plan of the full-graph stages (`full` or a sampled
    /// minibatch plan; default: the scale's per-dataset choice).
    pub fn plan(mut self, plan: TrainingPlan) -> Self {
        self.overrides.plan = Some(plan);
        self
    }

    /// Base seed (default: the grid default, 17).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the description and produces the [`Experiment`].
    pub fn build(self) -> Result<Experiment, BgcError> {
        let dataset = self
            .dataset
            .ok_or_else(|| BgcError::invalid("a dataset is required (builder.dataset(..))"))?;
        // Registry membership: fail here, not mid-grid.  Resolution also
        // re-canonicalizes spellings of ids that were constructed before
        // their entry was registered.
        let attack = AttackId::new(lookup_attack(&self.attack)?.name());
        let method = MethodId::new(lookup_method(&self.method)?.name());
        let eval = match &self.eval {
            EvalKind::Standard => EvalKind::Standard,
            EvalKind::Defended(id) => {
                let defense = bgc_defense::resolve_defense(id.as_str())
                    .ok_or_else(|| BgcError::UnknownDefense(id.to_string()))?;
                EvalKind::Defended(bgc_defense::DefenseId::new(defense.name()))
            }
        };
        let ratio = self
            .ratio
            .unwrap_or_else(|| dataset.paper_condensation_ratios()[1]);
        if !ratio.is_finite() || ratio <= 0.0 || ratio > 1.0 {
            return Err(BgcError::invalid(format!(
                "condensation ratio must lie in (0, 1], got {}",
                ratio
            )));
        }
        if self.overrides.trigger_size == Some(0) {
            return Err(BgcError::invalid("trigger size must be at least 1"));
        }
        if self.overrides.outer_epochs == Some(0) {
            return Err(BgcError::invalid("condensation needs at least one epoch"));
        }
        if self.overrides.num_layers == Some(0) {
            return Err(BgcError::invalid("the victim needs at least one layer"));
        }
        match self.overrides.poison_budget {
            Some(crate::runner::BudgetOverride::RatioBits(bits)) => {
                let r = f32::from_bits(bits);
                if !r.is_finite() || r <= 0.0 || r > 1.0 {
                    return Err(BgcError::invalid(format!(
                        "poisoning ratio must lie in (0, 1], got {}",
                        r
                    )));
                }
            }
            Some(crate::runner::BudgetOverride::Count(0)) => {
                return Err(BgcError::invalid(
                    "poisoning budget must be at least 1 node",
                ));
            }
            _ => {}
        }
        if let Some(TrainingPlan::Sampled(plan)) = &self.overrides.plan {
            if plan.batch_size == 0 {
                return Err(BgcError::invalid(
                    "sampled plans need a non-zero batch size",
                ));
            }
            if plan.fanouts.is_empty() {
                return Err(BgcError::invalid(
                    "sampled plans need at least one fanout (one per propagation step)",
                ));
            }
            // An explicitly requested plan must match the victim's
            // propagation depth (scale-default plans are adapted
            // automatically; fixed-depth stages like the selector GCN adapt
            // any plan).  Validating here turns a mid-run panic on a
            // multi-minute large-tier cell into an immediate typed error.
            let architecture = self.overrides.architecture.unwrap_or(GnnArchitecture::Gcn);
            let layers = self.overrides.num_layers.unwrap_or(2);
            if let Some(depth) = architecture.propagation_depth(layers) {
                if plan.fanouts.len() != depth {
                    return Err(BgcError::invalid(format!(
                        "the sampled plan provides {} fanouts but a {}-layer {} victim \
                         performs {} propagation steps — pass one fanout per step",
                        plan.fanouts.len(),
                        layers,
                        architecture,
                        depth
                    )));
                }
            }
        }
        if let Some(source) = self.overrides.source_class {
            let baseline = self.scale.bgc_config(dataset, ratio, self.seed);
            if source == baseline.target_class {
                return Err(BgcError::invalid(format!(
                    "directed source class {} equals the attack's target class",
                    source
                )));
            }
            let num_classes = dataset.spec().num_classes;
            if source >= num_classes {
                return Err(BgcError::invalid(format!(
                    "source class {} is out of range for {} ({} classes)",
                    source,
                    dataset.name(),
                    num_classes
                )));
            }
        }
        Ok(Experiment {
            scale: self.scale,
            dataset,
            method,
            attack,
            ratio,
            eval,
            seed: self.seed,
            overrides: self.overrides,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use bgc_condense::CondensationKind;

    #[test]
    fn builder_defaults_follow_the_paper() {
        let experiment = Experiment::builder()
            .dataset(DatasetKind::Cora)
            .build()
            .expect("defaults validate");
        assert_eq!(experiment.attack.as_str(), "BGC");
        assert_eq!(experiment.method.as_str(), "GCond");
        assert_eq!(experiment.scale, ExperimentScale::Quick);
        assert_eq!(experiment.seed, DEFAULT_BASE_SEED);
        assert_eq!(
            experiment.ratio,
            DatasetKind::Cora.paper_condensation_ratios()[1]
        );
        assert_eq!(experiment.eval, EvalKind::Standard);
    }

    #[test]
    fn builder_accepts_names_and_canonicalizes_spellings() {
        let experiment = Experiment::builder()
            .dataset(DatasetKind::Citeseer)
            .attack("gta")
            .method("gcond-x")
            .defense("PRUNE")
            .build()
            .expect("names resolve");
        assert_eq!(experiment.attack.as_str(), "GTA");
        assert_eq!(experiment.method.as_str(), "GCond-X");
        assert_eq!(experiment.eval, EvalKind::prune());
    }

    #[test]
    fn builder_rejects_invalid_descriptions() {
        // Missing dataset.
        assert!(matches!(
            Experiment::builder().build(),
            Err(BgcError::InvalidExperiment(_))
        ));
        // Unknown registry names.
        assert!(matches!(
            Experiment::builder()
                .dataset(DatasetKind::Cora)
                .attack("Ghost")
                .build(),
            Err(BgcError::UnknownAttack(name)) if name == "Ghost"
        ));
        assert!(matches!(
            Experiment::builder()
                .dataset(DatasetKind::Cora)
                .method("Vapour")
                .build(),
            Err(BgcError::UnknownMethod(name)) if name == "Vapour"
        ));
        assert!(matches!(
            Experiment::builder()
                .dataset(DatasetKind::Cora)
                .defense("moat")
                .build(),
            Err(BgcError::UnknownDefense(name)) if name == "moat"
        ));
        // Out-of-range knobs.
        for ratio in [0.0, -0.5, 1.5, f32::NAN] {
            assert!(matches!(
                Experiment::builder()
                    .dataset(DatasetKind::Cora)
                    .ratio(ratio)
                    .build(),
                Err(BgcError::InvalidExperiment(_))
            ));
        }
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .trigger_size(0)
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .num_layers(0)
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .outer_epochs(0)
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .poison_budget(PoisonBudget::Ratio(2.0))
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .poison_budget(PoisonBudget::Count(0))
            .build()
            .is_err());
        // Sampled-plan depth validation: fanout count must match the
        // victim's propagation depth.
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .plan("sampled:b64:f8x8".parse().unwrap())
            .build()
            .is_ok());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .plan("sampled:b64:f8".parse().unwrap())
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .num_layers(3)
            .plan("sampled:b64:f8x8x8".parse().unwrap())
            .build()
            .is_ok());
        // Directed-attack consistency: class 0 is the target class.
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .source_class(0)
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .source_class(99)
            .build()
            .is_err());
        assert!(Experiment::builder()
            .dataset(DatasetKind::Cora)
            .source_class(1)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_lowers_to_the_same_cell_keys_as_the_runner() {
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let experiment = Experiment::builder()
            .dataset(DatasetKind::Cora)
            .method(CondensationKind::GCond)
            .attack(AttackKind::Bgc)
            .ratio(0.026)
            .build()
            .unwrap();
        let from_builder = experiment.group(&runner).unwrap();
        let by_hand = runner.bgc_group(DatasetKind::Cora, CondensationKind::GCond, 0.026);
        assert_eq!(from_builder.keys, by_hand.keys);
        // Scale mismatch is rejected up front.
        let paper_runner = Runner::in_memory(ExperimentScale::Paper);
        assert!(experiment.group(&paper_runner).is_err());
    }
}
