//! # bgc-eval
//!
//! Experiment harness for the Rust reproduction of *"Backdoor Graph
//! Condensation"* (ICDE 2025): the CTA/ASR evaluation protocol of Section V,
//! quick/paper experiment scales, the typed [`Experiment`] builder, and one
//! regenerator function per table and figure of the evaluation section
//! (consumed by the `bgc` CLI and the `exp_*` wrappers in `bgc-bench`).
//!
//! Attacks, condensation methods and defenses are resolved by name from the
//! open registries in `bgc-core`, `bgc-condense` and `bgc-defense` and driven
//! through trait objects — registering a new one runs it through the grid
//! without touching this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact_codec;
pub mod experiment;
pub mod experiments;
pub mod paper;
pub mod protocol;
pub mod report_json;
pub mod runner;
pub mod scale;
pub mod tables;

pub use bgc_core::BgcError;
pub use bgc_runtime::{CancelToken, FaultAction, FaultPlan, FaultSpec};
pub use experiment::{Experiment, ExperimentBuilder};
pub use protocol::{
    attack_stage, clean_stage, run_spec, run_spec_with, AttackArtifacts, AttackKind, RunMetrics,
    RunSpec,
};
pub use runner::{
    enter_wave, BudgetOverride, CellGroup, CellKey, CellOutcome, CellOverrides, CellResult,
    CellStatus, CodeEpochs, EvalKind, GridReport, Runner, RunnerStats, WaveCtx, WaveObserver,
    WaveScope, DEFAULT_BASE_SEED, EVAL_CODE_EPOCH,
};
pub use scale::ExperimentScale;
pub use tables::ExperimentReport;
