//! Report container shared by every experiment regenerator: a titled list of
//! rows that can be printed as a text table and dumped as JSON next to it
//! (under `target/experiments/`), so EXPERIMENTS.md can be kept in sync
//! mechanically.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A generated experiment report (one per paper table / figure).
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentReport {
    /// Report identifier, e.g. `"table2"` or `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Experiment scale the report was generated at.
    pub scale: String,
    /// Pre-formatted table rows.
    pub rows: Vec<String>,
    /// Structured values (JSON-friendly) backing the rows.
    pub records: Vec<serde_json::Value>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, scale: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            scale: scale.into(),
            rows: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Appends a pre-formatted row together with its structured record.
    pub fn push<T: Serialize>(&mut self, row: String, record: &T) {
        self.rows.push(row);
        self.records
            .push(serde_json::to_value(record).unwrap_or(serde_json::Value::Null));
    }

    /// Appends a plain text row without a structured record.
    pub fn push_text(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ({} scale) ==\n", self.title, self.scale));
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Prints the report to stdout and writes the JSON dump under
    /// `target/experiments/<id>.json`.  I/O failures are reported on stderr
    /// but never abort the run.
    pub fn print_and_save(&self) {
        print!("{}", self.render());
        self.save();
    }

    /// Writes the JSON dump under `target/experiments/<id>.json` without
    /// printing (the daemon and `--format json` route the rendered text
    /// elsewhere).  I/O failures are reported on stderr but never abort.
    pub fn save(&self) {
        let dir = PathBuf::from("target/experiments");
        if let Err(err) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {}", dir.display(), err);
            return;
        }
        let path = dir.join(format!("{}.json", self.id));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(err) = fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {}", path.display(), err);
                }
            }
            Err(err) => eprintln!("warning: could not serialize report: {}", err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        value: f32,
    }

    #[test]
    fn render_contains_title_and_rows() {
        let mut report = ExperimentReport::new("table0", "Sanity", "quick");
        report.push("row one".to_string(), &Row { value: 1.0 });
        report.push_text("row two".to_string());
        let text = report.render();
        assert!(text.contains("Sanity"));
        assert!(text.contains("row one"));
        assert!(text.contains("row two"));
        assert_eq!(report.records.len(), 1);
    }
}
