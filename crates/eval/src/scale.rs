//! Experiment scales.
//!
//! Every regenerator binary accepts `--scale quick|paper|large`:
//!
//! * **Quick** (default) — reduced dataset sizes (the `small_spec` presets),
//!   reduced epoch counts and a single repetition, so the entire suite runs on
//!   a laptop in minutes.  The *shape* of the paper's results (who wins, by
//!   roughly what factor) is preserved.
//! * **Paper** — Table I-sized datasets (with the historical 10–20x
//!   down-scaling of Flickr/Reddit), the paper's epoch counts and three
//!   repetitions.  Substantially slower; intended for overnight runs.
//! * **Large** — the *full* Table I node counts (89k-node Flickr, 233k-node
//!   Reddit, the 169k-node arxiv-like graph), generated through the chunked
//!   SBM path.  Full-graph training stages (the clean reference GNN, the
//!   selector) switch to neighbour-sampled minibatch plans on the big
//!   datasets, and the epoch budget is trimmed so one cell completes in
//!   minutes: this tier exists to exercise paper-scale scenarios end to end,
//!   not to converge overnight sweeps.

use std::fmt;
use std::str::FromStr;

use bgc_condense::CondensationConfig;
use bgc_core::{BgcConfig, EvaluationOptions, VictimSpec};
use bgc_graph::{DatasetKind, Graph};
use bgc_nn::{SampledPlan, TrainConfig, TrainingPlan};

/// Node count at and above which the `large` scale switches a dataset's
/// full-graph training stages to a sampled plan.
pub const SAMPLED_PLAN_NODE_THRESHOLD: usize = 20_000;

/// Quick (laptop), paper-faithful, or full-scale sampled experiment scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExperimentScale {
    /// Reduced datasets / epochs / repetitions.
    Quick,
    /// Paper-sized datasets and epoch counts.
    Paper,
    /// Full Table I node counts with sampled training plans.
    Large,
}

impl fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExperimentScale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown experiment scale '{}'", s))
    }
}

impl ExperimentScale {
    /// Parses `"quick"` / `"paper"` / `"large"` (case-insensitive).
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(ExperimentScale::Quick),
            "paper" => Some(ExperimentScale::Paper),
            "large" => Some(ExperimentScale::Large),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Paper => "paper",
            ExperimentScale::Large => "large",
        }
    }

    /// Loads a dataset at this scale.
    pub fn load(&self, dataset: DatasetKind, seed: u64) -> Graph {
        match self {
            ExperimentScale::Quick => dataset.load_small(seed),
            ExperimentScale::Paper => dataset.load(seed),
            ExperimentScale::Large => dataset.load_large(seed),
        }
    }

    /// Number of repetitions per configuration (the paper repeats 3 times).
    pub fn repetitions(&self) -> usize {
        match self {
            ExperimentScale::Quick | ExperimentScale::Large => 1,
            ExperimentScale::Paper => 3,
        }
    }

    /// The training plan of full-graph stages for a dataset at this scale:
    /// sampled minibatches on the large tier's big graphs, full batch
    /// everywhere else.
    pub fn training_plan(&self, dataset: DatasetKind) -> TrainingPlan {
        match self {
            ExperimentScale::Quick | ExperimentScale::Paper => TrainingPlan::FullBatch,
            ExperimentScale::Large => {
                if dataset.large_spec().num_nodes >= SAMPLED_PLAN_NODE_THRESHOLD {
                    TrainingPlan::Sampled(SampledPlan {
                        fanouts: vec![10, 10],
                        batch_size: 1024,
                    })
                } else {
                    TrainingPlan::FullBatch
                }
            }
        }
    }

    /// Condensation configuration for a given ratio.
    ///
    /// At quick scale the paper's condensation ratios would collapse the small
    /// datasets to fewer nodes than classes, so the ratio is widened by 10x
    /// (the datasets are ~10x smaller) — the relative ordering between ratios
    /// is preserved.  The large tier keeps the paper ratios (its datasets are
    /// full scale) but trims the outer-epoch budget: each condensation step
    /// propagates a multi-hundred-thousand-node graph.
    pub fn condensation_config(&self, ratio: f32) -> CondensationConfig {
        match self {
            ExperimentScale::Quick => CondensationConfig::quick((ratio * 10.0).min(0.5)),
            ExperimentScale::Paper => CondensationConfig::paper(ratio),
            ExperimentScale::Large => CondensationConfig {
                outer_epochs: 30,
                surrogate_resample_every: 10,
                surrogate_steps: 3,
                ..CondensationConfig::paper(ratio)
            },
        }
    }

    /// BGC attack configuration for a dataset at a given condensation ratio.
    pub fn bgc_config(&self, dataset: DatasetKind, ratio: f32, seed: u64) -> BgcConfig {
        let mut config = match self {
            ExperimentScale::Quick => BgcConfig::quick(),
            ExperimentScale::Paper => BgcConfig::default(),
            ExperimentScale::Large => BgcConfig {
                // Full-graph attack stages are budgeted for one pass over a
                // 233k-node graph, not a sweep: a handful of selector epochs
                // under the sampled plan, small trigger-update samples, and
                // tightly capped computation graphs.
                selector_epochs: 4,
                generator_steps: 4,
                surrogate_steps: 3,
                update_sample_size: 16,
                max_neighbors_per_hop: 8,
                ..BgcConfig::default()
            },
        };
        config.condensation = self.condensation_config(ratio);
        config.poison_budget = self.scale_budget(dataset.paper_poison_budget());
        config.training_plan = self.training_plan(dataset);
        if *self == ExperimentScale::Quick {
            config.max_neighbors_per_hop = 8;
            config.condensation.outer_epochs = 40;
        }
        config.seed = seed;
        config
    }

    /// Rescales a paper-scale poisoning budget to this scale: the absolute
    /// poison counts of the inductive datasets shrink with the 10x-smaller
    /// quick datasets, ratio budgets are scale-free.  Shared by
    /// [`Self::bgc_config`] and the Table VII budget sweep.
    pub fn scale_budget(&self, budget: bgc_graph::PoisonBudget) -> bgc_graph::PoisonBudget {
        match (self, budget) {
            (ExperimentScale::Quick, bgc_graph::PoisonBudget::Count(c)) => {
                bgc_graph::PoisonBudget::Count((c / 10).max(4))
            }
            (_, budget) => budget,
        }
    }

    /// Victim model specification.  The victim trains on the condensed graph
    /// (tiny at every scale), so the large tier borrows the quick training
    /// budget; use [`Self::victim_spec_for`] to also carry the dataset's
    /// full-graph training plan.
    pub fn victim_spec(&self) -> VictimSpec {
        match self {
            ExperimentScale::Quick | ExperimentScale::Large => VictimSpec::quick(),
            ExperimentScale::Paper => VictimSpec {
                train: TrainConfig {
                    epochs: 400,
                    patience: None,
                    ..TrainConfig::default()
                },
                ..VictimSpec::default()
            },
        }
    }

    /// [`Self::victim_spec`] with the dataset's training plan attached (used
    /// by full-graph victim stages such as the Figure 1 reference model).
    pub fn victim_spec_for(&self, dataset: DatasetKind) -> VictimSpec {
        VictimSpec {
            plan: self.training_plan(dataset),
            ..self.victim_spec()
        }
    }

    /// ASR evaluation options.
    pub fn evaluation_options(&self, seed: u64) -> EvaluationOptions {
        EvaluationOptions {
            max_asr_nodes: match self {
                ExperimentScale::Quick => 60,
                ExperimentScale::Paper => 500,
                ExperimentScale::Large => 50,
            },
            asr_source_class: None,
            plan: TrainingPlan::FullBatch,
            seed,
        }
    }

    /// [`Self::evaluation_options`] with the dataset's plan attached: under
    /// a sampled plan the ASR computation graphs are extracted with the
    /// plan's randomized fanout caps.
    pub fn evaluation_options_for(&self, dataset: DatasetKind, seed: u64) -> EvaluationOptions {
        EvaluationOptions {
            plan: self.training_plan(dataset),
            ..self.evaluation_options(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_accepts_all_scales() {
        assert_eq!(
            ExperimentScale::parse("quick"),
            Some(ExperimentScale::Quick)
        );
        assert_eq!(
            ExperimentScale::parse("PAPER"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(
            ExperimentScale::parse("large"),
            Some(ExperimentScale::Large)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn quick_scale_is_cheaper_than_paper_scale() {
        let quick = ExperimentScale::Quick.bgc_config(DatasetKind::Cora, 0.026, 0);
        let paper = ExperimentScale::Paper.bgc_config(DatasetKind::Cora, 0.026, 0);
        assert!(quick.condensation.outer_epochs < paper.condensation.outer_epochs);
        assert!(ExperimentScale::Quick.repetitions() < ExperimentScale::Paper.repetitions());
    }

    #[test]
    fn quick_datasets_are_small() {
        let g = ExperimentScale::Quick.load(DatasetKind::Reddit, 0);
        assert!(g.num_nodes() < 2000);
    }

    #[test]
    fn inductive_poison_budget_is_scaled_down_at_quick_scale() {
        let cfg = ExperimentScale::Quick.bgc_config(DatasetKind::Flickr, 0.005, 0);
        match cfg.poison_budget {
            bgc_graph::PoisonBudget::Count(c) => assert!(c <= 8),
            other => panic!("expected a count budget, got {:?}", other),
        }
    }

    #[test]
    fn large_tier_selects_sampled_plans_for_big_graphs_only() {
        for dataset in [DatasetKind::Flickr, DatasetKind::Reddit, DatasetKind::Arxiv] {
            assert!(
                ExperimentScale::Large.training_plan(dataset).is_sampled(),
                "{} should train sampled at large scale",
                dataset
            );
        }
        for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
            assert_eq!(
                ExperimentScale::Large.training_plan(dataset),
                TrainingPlan::FullBatch
            );
        }
        // Other scales never sample.
        for scale in [ExperimentScale::Quick, ExperimentScale::Paper] {
            assert_eq!(
                scale.training_plan(DatasetKind::Reddit),
                TrainingPlan::FullBatch
            );
        }
    }

    #[test]
    fn large_configs_carry_the_plan_through() {
        let cfg = ExperimentScale::Large.bgc_config(DatasetKind::Reddit, 0.001, 1);
        assert!(cfg.training_plan.is_sampled());
        // The paper ratio is kept (the datasets are full scale)...
        assert_eq!(cfg.condensation.ratio, 0.001);
        // ...but the epoch budget is trimmed for tractability.
        assert!(cfg.condensation.outer_epochs <= 40);
        assert!(cfg.condensation.outer_epochs >= 12);
        let victim = ExperimentScale::Large.victim_spec_for(DatasetKind::Reddit);
        assert!(victim.plan.is_sampled());
        let options = ExperimentScale::Large.evaluation_options_for(DatasetKind::Reddit, 1);
        assert!(options.plan.is_sampled());
        // Quick configs are untouched by the plan plumbing.
        let quick = ExperimentScale::Quick.bgc_config(DatasetKind::Reddit, 0.001, 1);
        assert_eq!(quick.training_plan, TrainingPlan::FullBatch);
        assert_eq!(
            ExperimentScale::Quick
                .evaluation_options_for(DatasetKind::Reddit, 1)
                .plan,
            TrainingPlan::FullBatch
        );
    }
}
