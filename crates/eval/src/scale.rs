//! Experiment scales.
//!
//! Every regenerator binary accepts `--scale quick|paper`:
//!
//! * **Quick** (default) — reduced dataset sizes (the `small_spec` presets),
//!   reduced epoch counts and a single repetition, so the entire suite runs on
//!   a laptop in minutes.  The *shape* of the paper's results (who wins, by
//!   roughly what factor) is preserved.
//! * **Paper** — Table I-sized datasets, the paper's epoch counts and three
//!   repetitions.  Substantially slower; intended for overnight runs.

use std::fmt;
use std::str::FromStr;

use bgc_condense::CondensationConfig;
use bgc_core::{BgcConfig, EvaluationOptions, VictimSpec};
use bgc_graph::{DatasetKind, Graph};
use bgc_nn::TrainConfig;

/// Quick (laptop) or paper-faithful experiment scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExperimentScale {
    /// Reduced datasets / epochs / repetitions.
    Quick,
    /// Paper-sized datasets and epoch counts.
    Paper,
}

impl fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExperimentScale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown experiment scale '{}'", s))
    }
}

impl ExperimentScale {
    /// Parses `"quick"` / `"paper"` (case-insensitive).
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(ExperimentScale::Quick),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Paper => "paper",
        }
    }

    /// Loads a dataset at this scale.
    pub fn load(&self, dataset: DatasetKind, seed: u64) -> Graph {
        match self {
            ExperimentScale::Quick => dataset.load_small(seed),
            ExperimentScale::Paper => dataset.load(seed),
        }
    }

    /// Number of repetitions per configuration (the paper repeats 3 times).
    pub fn repetitions(&self) -> usize {
        match self {
            ExperimentScale::Quick => 1,
            ExperimentScale::Paper => 3,
        }
    }

    /// Condensation configuration for a given ratio.
    ///
    /// At quick scale the paper's condensation ratios would collapse the small
    /// datasets to fewer nodes than classes, so the ratio is widened by 10x
    /// (the datasets are ~10x smaller) — the relative ordering between ratios
    /// is preserved.
    pub fn condensation_config(&self, ratio: f32) -> CondensationConfig {
        match self {
            ExperimentScale::Quick => CondensationConfig::quick((ratio * 10.0).min(0.5)),
            ExperimentScale::Paper => CondensationConfig::paper(ratio),
        }
    }

    /// BGC attack configuration for a dataset at a given condensation ratio.
    pub fn bgc_config(&self, dataset: DatasetKind, ratio: f32, seed: u64) -> BgcConfig {
        let mut config = match self {
            ExperimentScale::Quick => BgcConfig::quick(),
            ExperimentScale::Paper => BgcConfig::default(),
        };
        config.condensation = self.condensation_config(ratio);
        config.poison_budget = self.scale_budget(dataset.paper_poison_budget());
        if *self == ExperimentScale::Quick {
            config.max_neighbors_per_hop = 8;
            config.condensation.outer_epochs = 40;
        }
        config.seed = seed;
        config
    }

    /// Rescales a paper-scale poisoning budget to this scale: the absolute
    /// poison counts of the inductive datasets shrink with the 10x-smaller
    /// quick datasets, ratio budgets are scale-free.  Shared by
    /// [`Self::bgc_config`] and the Table VII budget sweep.
    pub fn scale_budget(&self, budget: bgc_graph::PoisonBudget) -> bgc_graph::PoisonBudget {
        match (self, budget) {
            (ExperimentScale::Quick, bgc_graph::PoisonBudget::Count(c)) => {
                bgc_graph::PoisonBudget::Count((c / 10).max(4))
            }
            (_, budget) => budget,
        }
    }

    /// Victim model specification.
    pub fn victim_spec(&self) -> VictimSpec {
        match self {
            ExperimentScale::Quick => VictimSpec::quick(),
            ExperimentScale::Paper => VictimSpec {
                train: TrainConfig {
                    epochs: 400,
                    patience: None,
                    ..TrainConfig::default()
                },
                ..VictimSpec::default()
            },
        }
    }

    /// ASR evaluation options.
    pub fn evaluation_options(&self, seed: u64) -> EvaluationOptions {
        EvaluationOptions {
            max_asr_nodes: match self {
                ExperimentScale::Quick => 60,
                ExperimentScale::Paper => 500,
            },
            asr_source_class: None,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_accepts_both_scales() {
        assert_eq!(
            ExperimentScale::parse("quick"),
            Some(ExperimentScale::Quick)
        );
        assert_eq!(
            ExperimentScale::parse("PAPER"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn quick_scale_is_cheaper_than_paper_scale() {
        let quick = ExperimentScale::Quick.bgc_config(DatasetKind::Cora, 0.026, 0);
        let paper = ExperimentScale::Paper.bgc_config(DatasetKind::Cora, 0.026, 0);
        assert!(quick.condensation.outer_epochs < paper.condensation.outer_epochs);
        assert!(ExperimentScale::Quick.repetitions() < ExperimentScale::Paper.repetitions());
    }

    #[test]
    fn quick_datasets_are_small() {
        let g = ExperimentScale::Quick.load(DatasetKind::Reddit, 0);
        assert!(g.num_nodes() < 2000);
    }

    #[test]
    fn inductive_poison_budget_is_scaled_down_at_quick_scale() {
        let cfg = ExperimentScale::Quick.bgc_config(DatasetKind::Flickr, 0.005, 0);
        match cfg.poison_budget {
            bgc_graph::PoisonBudget::Count(c) => assert!(c <= 8),
            other => panic!("expected a count budget, got {:?}", other),
        }
    }
}
