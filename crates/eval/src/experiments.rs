//! One regenerator function per table and figure of the paper's evaluation
//! section.  Each returns an [`ExperimentReport`] that the `bgc-bench`
//! binaries print and dump as JSON.
//!
//! Regenerators are *declarative*: they build the list of experiment cells
//! they need ([`CellGroup`]s), hand the whole list to the [`Runner`] — which
//! executes independent cells in parallel, shares the attack/condensation
//! stages between overlapping cells, and resumes from the on-disk cache —
//! and then render rows from the aggregated results.

use serde::Serialize;

use bgc_condense::CondensationKind;
use bgc_core::{BgcError, GeneratorKind};
use bgc_graph::{DatasetKind, GraphStats};
use bgc_nn::GnnArchitecture;

use crate::protocol::AttackKind;
use crate::runner::{CellGroup, CellOverrides, EvalKind, Runner};
use crate::scale::ExperimentScale;
use crate::tables::ExperimentReport;

/// Datasets included in a sweep: all four at paper scale, the two citation
/// graphs at quick scale (keeps the default regenerator runs short; pass
/// `--full` to a binary to include all four).
pub fn sweep_datasets(scale: ExperimentScale, full: bool) -> Vec<DatasetKind> {
    if full || scale == ExperimentScale::Paper {
        DatasetKind::all().to_vec()
    } else {
        vec![DatasetKind::Cora, DatasetKind::Citeseer]
    }
}

/// Runs every group of `rows` through the runner in one parallel wave and
/// renders one row per group via `render`.
fn render_rows(
    report: &mut ExperimentReport,
    runner: &Runner,
    rows: Vec<(String, CellGroup)>,
    render: impl Fn(&str, &crate::protocol::RunMetrics) -> String,
) -> Result<(), BgcError> {
    let groups: Vec<&CellGroup> = rows.iter().map(|(_, g)| g).collect();
    runner.run_groups(&groups)?;
    for (prefix, group) in &rows {
        let metrics = runner.metrics(group)?;
        report.push(render(prefix, &metrics), &metrics);
    }
    Ok(())
}

/// Table I: dataset statistics.
pub fn table1(scale: ExperimentScale) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new("table1", "Table I: dataset statistics", scale.name());
    report.push_text(GraphStats::table_header());
    for dataset in DatasetKind::all() {
        let graph = scale.load(dataset, 0);
        let stats = GraphStats::of(&graph);
        report.push(stats.table_row(), &StatsRecord::from(&stats));
    }
    Ok(report)
}

#[derive(Serialize)]
struct StatsRecord {
    name: String,
    nodes: usize,
    edges: usize,
    classes: usize,
    features: usize,
    train: usize,
    val: usize,
    test: usize,
}

impl From<&GraphStats> for StatsRecord {
    fn from(s: &GraphStats) -> Self {
        Self {
            name: s.name.clone(),
            nodes: s.nodes,
            edges: s.edges,
            classes: s.classes,
            features: s.features,
            train: s.train,
            val: s.val,
            test: s.test,
        }
    }
}

/// Figure 1: Clean model vs Naive Poison vs BGC clean test accuracy on Cora
/// and Citeseer (GCond).
pub fn fig1(runner: &Runner) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "fig1",
        "Figure 1: CTA of Clean / Naive Poison / BGC (GCond)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        let ratio = dataset.paper_condensation_ratios()[1];
        for attack in [AttackKind::NaivePoison, AttackKind::Bgc] {
            let group = runner.group(
                dataset,
                CondensationKind::GCond,
                attack,
                ratio,
                EvalKind::Standard,
                CellOverrides::default(),
            );
            rows.push((String::new(), group));
        }
    }
    render_rows(&mut report, runner, rows, |_, metrics| {
        format!(
            "{:<10} {:<12} clean-CTA {:>6.2}  attacked-CTA {:>6.2}  ASR {:>6.2}",
            metrics.dataset,
            metrics.attack,
            metrics.c_cta * 100.0,
            metrics.cta * 100.0,
            metrics.asr * 100.0
        )
    })?;
    Ok(report)
}

/// Table II: C-CTA / CTA / C-ASR / ASR across datasets, condensation methods
/// and condensation ratios.
pub fn table2(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table2",
        "Table II: model utility (CTA) and attack performance (ASR)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in sweep_datasets(runner.scale(), full) {
        for method in CondensationKind::all() {
            for ratio in dataset.paper_condensation_ratios() {
                rows.push((String::new(), runner.bgc_group(dataset, method, ratio)));
            }
        }
    }
    render_rows(&mut report, runner, rows, |_, m| m.table_row())?;
    Ok(report)
}

/// Figure 4: BGC vs GTA vs DOORPING across condensation ratios (GCond).
pub fn fig4(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "fig4",
        "Figure 4: BGC vs adapted graph backdoor baselines (GCond)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in sweep_datasets(runner.scale(), full) {
        for ratio in dataset.paper_condensation_ratios() {
            for attack in [AttackKind::Gta, AttackKind::Doorping, AttackKind::Bgc] {
                let group = runner.group(
                    dataset,
                    CondensationKind::GCond,
                    attack,
                    ratio,
                    EvalKind::Standard,
                    CellOverrides::default(),
                );
                rows.push((String::new(), group));
            }
        }
    }
    render_rows(&mut report, runner, rows, |_, m| m.table_row())?;
    Ok(report)
}

/// Table III: transfer of the poisoned condensed graph to different victim
/// GNN architectures (GCond).
pub fn table3(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table3",
        "Table III: attack transfer across GNN architectures (GCond)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in sweep_datasets(runner.scale(), full) {
        let ratio = dataset.paper_condensation_ratios()[1];
        for architecture in GnnArchitecture::all() {
            let group = runner.group(
                dataset,
                CondensationKind::GCond,
                AttackKind::Bgc,
                ratio,
                EvalKind::Standard,
                CellOverrides {
                    architecture: Some(architecture),
                    ..CellOverrides::default()
                },
            );
            rows.push((format!("{:<8}", architecture.name()), group));
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

/// A row of the defense study (Table IV).
#[derive(Serialize)]
pub struct DefenseRecord {
    /// Dataset name.
    pub dataset: String,
    /// Condensation method.
    pub method: String,
    /// Condensation ratio.
    pub ratio: f32,
    /// Undefended backdoored CTA.
    pub cta: f32,
    /// Undefended ASR.
    pub asr: f32,
    /// CTA under the Prune defense.
    pub prune_cta: f32,
    /// ASR under the Prune defense.
    pub prune_asr: f32,
    /// CTA under Randsmooth.
    pub randsmooth_cta: f32,
    /// ASR under Randsmooth.
    pub randsmooth_asr: f32,
}

/// Table IV: Prune and Randsmooth defenses against BGC (GCond and GCond-X).
pub fn table4(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table4",
        "Table IV: attack performance against defenses",
        runner.scale().name(),
    );
    let datasets = sweep_datasets(runner.scale(), full);
    // Declare the full (method, dataset, eval-mode) grid first so the runner
    // sees every cell at once; the three eval modes of one coordinate share
    // a single BGC attack via the stage cache.
    let mut cells = Vec::new();
    for method in [CondensationKind::GCond, CondensationKind::GCondX] {
        for &dataset in &datasets {
            let ratio = dataset.paper_condensation_ratios()[1];
            for eval in [
                EvalKind::Standard,
                EvalKind::prune(),
                EvalKind::randsmooth(),
            ] {
                let group = runner.group(
                    dataset,
                    method,
                    AttackKind::Bgc,
                    ratio,
                    eval,
                    CellOverrides::default(),
                );
                cells.push(group);
            }
        }
    }
    runner.run_groups(&cells.iter().collect::<Vec<_>>())?;
    for chunk in cells.chunks(3) {
        let record = defense_record(runner, &chunk[0], &chunk[1], &chunk[2])?;
        report.push(
            format!(
                "{:<9} {:<10} r={:>5.2}%  undefended CTA {:>6.2} ASR {:>6.2} | Prune CTA {:>6.2} ASR {:>6.2} | Randsmooth CTA {:>6.2} ASR {:>6.2}",
                record.method,
                record.dataset,
                record.ratio * 100.0,
                record.cta * 100.0,
                record.asr * 100.0,
                record.prune_cta * 100.0,
                record.prune_asr * 100.0,
                record.randsmooth_cta * 100.0,
                record.randsmooth_asr * 100.0
            ),
            &record,
        );
    }
    Ok(report)
}

fn defense_record(
    runner: &Runner,
    undefended: &CellGroup,
    prune: &CellGroup,
    randsmooth: &CellGroup,
) -> Result<DefenseRecord, BgcError> {
    let base = runner.metrics(undefended)?;
    let prune = runner.metrics(prune)?;
    let randsmooth = runner.metrics(randsmooth)?;
    Ok(DefenseRecord {
        dataset: base.dataset.clone(),
        method: base.method.clone(),
        ratio: base.ratio,
        cta: base.cta,
        asr: base.asr,
        prune_cta: prune.cta,
        prune_asr: prune.asr,
        randsmooth_cta: randsmooth.cta,
        randsmooth_asr: randsmooth.asr,
    })
}

/// Runs one defense cell: BGC attack, then evaluation without defense, with
/// Prune, and with Randsmooth.  The attack itself is computed once and
/// shared by the three evaluations through the runner's stage cache.
pub fn run_defense_cell(
    runner: &Runner,
    dataset: DatasetKind,
    method: CondensationKind,
    ratio: f32,
) -> Result<DefenseRecord, BgcError> {
    let groups: Vec<CellGroup> = [
        EvalKind::Standard,
        EvalKind::prune(),
        EvalKind::randsmooth(),
    ]
    .into_iter()
    .map(|eval| {
        runner.group(
            dataset,
            method,
            AttackKind::Bgc,
            ratio,
            eval,
            CellOverrides::default(),
        )
    })
    .collect();
    runner.run_groups(&groups.iter().collect::<Vec<_>>())?;
    defense_record(runner, &groups[0], &groups[1], &groups[2])
}

/// Figure 5: ablation of the poisoned-node selection module (BGC vs BGC_Rand)
/// on the inductive datasets (DC-Graph).
pub fn fig5(runner: &Runner) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "fig5",
        "Figure 5: ablation on poisoned-node selection (DC-Graph)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in [DatasetKind::Flickr, DatasetKind::Reddit] {
        let ratio = dataset.paper_condensation_ratios()[1];
        for attack in [AttackKind::BgcRand, AttackKind::Bgc] {
            let group = runner.group(
                dataset,
                CondensationKind::DcGraph,
                attack,
                ratio,
                EvalKind::Standard,
                CellOverrides::default(),
            );
            rows.push((String::new(), group));
        }
    }
    render_rows(&mut report, runner, rows, |_, m| m.table_row())?;
    Ok(report)
}

/// Table V: ablation on the trigger-generator encoder (MLP / GCN /
/// Transformer, GCond).
pub fn table5(runner: &Runner) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table5",
        "Table V: ablation on the trigger generator (GCond)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        for generator in GeneratorKind::all() {
            let ratio = dataset.paper_condensation_ratios()[0];
            let group = runner.group(
                dataset,
                CondensationKind::GCond,
                AttackKind::Bgc,
                ratio,
                EvalKind::Standard,
                CellOverrides {
                    generator: Some(generator),
                    ..CellOverrides::default()
                },
            );
            rows.push((format!("{:<12}", generator.name()), group));
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

/// Table VI: directed attack (a single source class is poisoned and
/// evaluated).
pub fn table6(runner: &Runner) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table6",
        "Table VI: directed attack ablation (GCond)",
        runner.scale().name(),
    );
    let mut rows = Vec::new();
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        let ratio = dataset.paper_condensation_ratios()[1];
        // Undirected BGC reference.
        rows.push((
            format!("{:<9}", "BGC"),
            runner.bgc_group(dataset, CondensationKind::GCond, ratio),
        ));
        // Directed variant: poison class 1, evaluate ASR on class 1 only.
        let directed = runner.group(
            dataset,
            CondensationKind::GCond,
            AttackKind::Bgc,
            ratio,
            EvalKind::Standard,
            CellOverrides {
                source_class: Some(1),
                ..CellOverrides::default()
            },
        );
        rows.push((format!("{:<9}", "Directed"), directed));
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

/// Figure 6: ASR as a function of the number of condensation epochs (GCond).
pub fn fig6(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "fig6",
        "Figure 6: ASR vs condensation epochs (GCond)",
        runner.scale().name(),
    );
    let epoch_grid: Vec<usize> = match runner.scale() {
        ExperimentScale::Quick => vec![5, 10, 20, 40, 80],
        ExperimentScale::Paper => vec![50, 100, 300, 500, 700, 900, 1000],
        // The large tier is for single-cell scenario runs, not figure
        // sweeps; a short grid keeps an explicit request tractable.
        ExperimentScale::Large => vec![4, 8, 12],
    };
    let mut rows = Vec::new();
    for dataset in sweep_datasets(runner.scale(), full) {
        let ratio = dataset.paper_condensation_ratios()[1];
        for &epochs in &epoch_grid {
            let group = runner.group(
                dataset,
                CondensationKind::GCond,
                AttackKind::Bgc,
                ratio,
                EvalKind::Standard,
                CellOverrides {
                    outer_epochs: Some(epochs),
                    ..CellOverrides::default()
                },
            );
            rows.push((format!("{:>5}", epochs), group));
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!(
            "{:<10} epochs {}  ASR {:>6.2}  CTA {:>6.2}",
            m.dataset,
            prefix,
            m.asr * 100.0,
            m.cta * 100.0
        )
    })?;
    Ok(report)
}

/// Table VII: effect of the poisoning ratio / poisoning number.
pub fn table7(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table7",
        "Table VII: poisoning budget study",
        runner.scale().name(),
    );
    let methods = [
        CondensationKind::DcGraph,
        CondensationKind::GCond,
        CondensationKind::GCondX,
    ];
    let mut rows = Vec::new();
    for dataset in sweep_datasets(runner.scale(), full) {
        let ratio = dataset.paper_condensation_ratios()[0];
        let budgets: Vec<bgc_graph::PoisonBudget> = match dataset {
            DatasetKind::Cora | DatasetKind::Citeseer => vec![
                bgc_graph::PoisonBudget::Ratio(0.10),
                bgc_graph::PoisonBudget::Ratio(0.15),
                bgc_graph::PoisonBudget::Ratio(0.20),
            ],
            DatasetKind::Flickr => vec![
                bgc_graph::PoisonBudget::Count(60),
                bgc_graph::PoisonBudget::Count(80),
                bgc_graph::PoisonBudget::Count(100),
            ],
            DatasetKind::Reddit => vec![
                bgc_graph::PoisonBudget::Count(130),
                bgc_graph::PoisonBudget::Count(180),
                bgc_graph::PoisonBudget::Count(230),
            ],
            // Not part of the paper's Table VII sweep; a single default
            // budget keeps the row meaningful if ever requested explicitly.
            DatasetKind::Arxiv => vec![dataset.paper_poison_budget()],
        };
        for budget in budgets {
            for method in methods {
                // Quick scale shrinks absolute budgets with the datasets.
                let scaled = runner.scale().scale_budget(budget);
                let group = runner.group(
                    dataset,
                    method,
                    AttackKind::Bgc,
                    ratio,
                    EvalKind::Standard,
                    CellOverrides {
                        poison_budget: Some(scaled.into()),
                        ..CellOverrides::default()
                    },
                );
                rows.push((format!("budget {:?}", budget), group));
            }
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

/// Table VIII: effect of the number of victim GNN layers (GCond).
pub fn table8(runner: &Runner, full: bool) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "table8",
        "Table VIII: number of GNN layers (GCond)",
        runner.scale().name(),
    );
    let mut datasets = sweep_datasets(runner.scale(), full);
    datasets.retain(|d| *d != DatasetKind::Reddit); // the paper studies Cora/Citeseer/Flickr
    let mut rows = Vec::new();
    for dataset in datasets {
        for ratio in dataset.paper_condensation_ratios() {
            for layers in [1usize, 2, 3] {
                let group = runner.group(
                    dataset,
                    CondensationKind::GCond,
                    AttackKind::Bgc,
                    ratio,
                    EvalKind::Standard,
                    CellOverrides {
                        num_layers: Some(layers),
                        ..CellOverrides::default()
                    },
                );
                rows.push((format!("layers {}", layers), group));
            }
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

/// Figure 8: effect of the trigger size (DC-Graph and GCond on Flickr).
pub fn fig8(runner: &Runner) -> Result<ExperimentReport, BgcError> {
    let mut report = ExperimentReport::new(
        "fig8",
        "Figure 8: trigger size study (Flickr)",
        runner.scale().name(),
    );
    let dataset = DatasetKind::Flickr;
    let mut rows = Vec::new();
    for method in [CondensationKind::DcGraph, CondensationKind::GCond] {
        for ratio in dataset.paper_condensation_ratios() {
            for trigger_size in 1..=4usize {
                let group = runner.group(
                    dataset,
                    method,
                    AttackKind::Bgc,
                    ratio,
                    EvalKind::Standard,
                    CellOverrides {
                        trigger_size: Some(trigger_size),
                        ..CellOverrides::default()
                    },
                );
                rows.push((format!("|g|={}", trigger_size), group));
            }
        }
    }
    render_rows(&mut report, runner, rows, |prefix, m| {
        format!("{} {}", prefix, m.table_row())
    })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_datasets() {
        let report = table1(ExperimentScale::Quick).unwrap();
        let text = report.render();
        for dataset in DatasetKind::all() {
            assert!(text.contains(dataset.name()), "missing {}", dataset.name());
        }
    }

    #[test]
    fn quick_sweep_restricts_datasets() {
        assert_eq!(sweep_datasets(ExperimentScale::Quick, false).len(), 2);
        assert_eq!(sweep_datasets(ExperimentScale::Quick, true).len(), 4);
        assert_eq!(sweep_datasets(ExperimentScale::Paper, false).len(), 4);
    }

    #[test]
    fn regenerators_declare_overlapping_cells() {
        // Table II and Figure 1 both contain the (cora, GCond, r[1], BGC)
        // cell — the declarative grid makes the overlap structural, which is
        // what the runner's cache exploits.
        let runner = Runner::in_memory(ExperimentScale::Quick);
        let ratio = DatasetKind::Cora.paper_condensation_ratios()[1];
        let table2_group = runner.bgc_group(DatasetKind::Cora, CondensationKind::GCond, ratio);
        let fig1_group = runner.group(
            DatasetKind::Cora,
            CondensationKind::GCond,
            AttackKind::Bgc,
            ratio,
            EvalKind::Standard,
            CellOverrides::default(),
        );
        assert_eq!(table2_group.keys, fig1_group.keys);
    }
}
