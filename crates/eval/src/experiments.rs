//! One regenerator function per table and figure of the paper's evaluation
//! section.  Each returns an [`ExperimentReport`] that the `bgc-bench`
//! binaries print and dump as JSON.

use serde::Serialize;

use bgc_condense::CondensationKind;
use bgc_core::{
    attach_to_computation_graph, directed_attack, evaluate_backdoor, BgcAttack, GeneratorKind,
    TriggerProvider, VictimSpec,
};
use bgc_defense::{prune_defense, randsmooth_predict, PruneConfig, RandsmoothConfig};
use bgc_graph::{DatasetKind, Graph, GraphStats};
use bgc_nn::{accuracy, attack_success_rate, train_on_condensed, AdjacencyRef, GnnArchitecture};
use bgc_tensor::init::{rng_from_seed, sample_without_replacement};

use crate::protocol::{run_spec, run_spec_with, AttackKind, RunSpec};
use crate::scale::ExperimentScale;
use crate::tables::ExperimentReport;

/// Datasets included in a sweep: all four at paper scale, the two citation
/// graphs at quick scale (keeps the default regenerator runs short; pass
/// `--full` to a binary to include all four).
pub fn sweep_datasets(scale: ExperimentScale, full: bool) -> Vec<DatasetKind> {
    if full || scale == ExperimentScale::Paper {
        DatasetKind::all().to_vec()
    } else {
        vec![DatasetKind::Cora, DatasetKind::Citeseer]
    }
}

/// Table I: dataset statistics.
pub fn table1(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new("table1", "Table I: dataset statistics", scale.name());
    report.push_text(GraphStats::table_header());
    for dataset in DatasetKind::all() {
        let graph = scale.load(dataset, 0);
        let stats = GraphStats::of(&graph);
        report.push(stats.table_row(), &StatsRecord::from(&stats));
    }
    report
}

#[derive(Serialize)]
struct StatsRecord {
    name: String,
    nodes: usize,
    edges: usize,
    classes: usize,
    features: usize,
    train: usize,
    val: usize,
    test: usize,
}

impl From<&GraphStats> for StatsRecord {
    fn from(s: &GraphStats) -> Self {
        Self {
            name: s.name.clone(),
            nodes: s.nodes,
            edges: s.edges,
            classes: s.classes,
            features: s.features,
            train: s.train,
            val: s.val,
            test: s.test,
        }
    }
}

/// Figure 1: Clean model vs Naive Poison vs BGC clean test accuracy on Cora
/// and Citeseer (GCond).
pub fn fig1(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig1",
        "Figure 1: CTA of Clean / Naive Poison / BGC (GCond)",
        scale.name(),
    );
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        let ratio = dataset.paper_condensation_ratios()[1];
        for attack in [AttackKind::NaivePoison, AttackKind::Bgc] {
            let mut spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
            spec.attack = attack;
            let metrics = run_spec(&spec);
            report.push(
                format!(
                    "{:<10} {:<12} clean-CTA {:>6.2}  attacked-CTA {:>6.2}  ASR {:>6.2}",
                    metrics.dataset,
                    metrics.attack,
                    metrics.c_cta * 100.0,
                    metrics.cta * 100.0,
                    metrics.asr * 100.0
                ),
                &metrics,
            );
        }
    }
    report
}

/// Table II: C-CTA / CTA / C-ASR / ASR across datasets, condensation methods
/// and condensation ratios.
pub fn table2(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table2",
        "Table II: model utility (CTA) and attack performance (ASR)",
        scale.name(),
    );
    for dataset in sweep_datasets(scale, full) {
        for method in CondensationKind::all() {
            for ratio in dataset.paper_condensation_ratios() {
                let spec = RunSpec::bgc(dataset, method, ratio, scale);
                let metrics = run_spec(&spec);
                report.push(metrics.table_row(), &metrics);
            }
        }
    }
    report
}

/// Figure 4: BGC vs GTA vs DOORPING across condensation ratios (GCond).
pub fn fig4(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Figure 4: BGC vs adapted graph backdoor baselines (GCond)",
        scale.name(),
    );
    for dataset in sweep_datasets(scale, full) {
        for ratio in dataset.paper_condensation_ratios() {
            for attack in [AttackKind::Gta, AttackKind::Doorping, AttackKind::Bgc] {
                let mut spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
                spec.attack = attack;
                let metrics = run_spec(&spec);
                report.push(metrics.table_row(), &metrics);
            }
        }
    }
    report
}

/// Table III: transfer of the poisoned condensed graph to different victim
/// GNN architectures (GCond).
pub fn table3(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3",
        "Table III: attack transfer across GNN architectures (GCond)",
        scale.name(),
    );
    for dataset in sweep_datasets(scale, full) {
        let ratio = dataset.paper_condensation_ratios()[1];
        for architecture in GnnArchitecture::all() {
            let spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
            let metrics = run_spec_with(&spec, |_, victim| {
                victim.architecture = architecture;
            });
            report.push(
                format!("{:<8} {}", architecture.name(), metrics.table_row()),
                &metrics,
            );
        }
    }
    report
}

/// A row of the defense study (Table IV).
#[derive(Serialize)]
pub struct DefenseRecord {
    /// Dataset name.
    pub dataset: String,
    /// Condensation method.
    pub method: String,
    /// Condensation ratio.
    pub ratio: f32,
    /// Undefended backdoored CTA.
    pub cta: f32,
    /// Undefended ASR.
    pub asr: f32,
    /// CTA under the Prune defense.
    pub prune_cta: f32,
    /// ASR under the Prune defense.
    pub prune_asr: f32,
    /// CTA under Randsmooth.
    pub randsmooth_cta: f32,
    /// ASR under Randsmooth.
    pub randsmooth_asr: f32,
}

/// Table IV: Prune and Randsmooth defenses against BGC (GCond and GCond-X).
pub fn table4(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table4",
        "Table IV: attack performance against defenses",
        scale.name(),
    );
    let datasets = sweep_datasets(scale, full);
    for method in [CondensationKind::GCond, CondensationKind::GCondX] {
        for &dataset in &datasets {
            let ratio = dataset.paper_condensation_ratios()[1];
            let record = run_defense_cell(scale, dataset, method, ratio);
            report.push(
                format!(
                    "{:<9} {:<10} r={:>5.2}%  undefended CTA {:>6.2} ASR {:>6.2} | Prune CTA {:>6.2} ASR {:>6.2} | Randsmooth CTA {:>6.2} ASR {:>6.2}",
                    record.method,
                    record.dataset,
                    record.ratio * 100.0,
                    record.cta * 100.0,
                    record.asr * 100.0,
                    record.prune_cta * 100.0,
                    record.prune_asr * 100.0,
                    record.randsmooth_cta * 100.0,
                    record.randsmooth_asr * 100.0
                ),
                &record,
            );
        }
    }
    report
}

/// Runs one defense cell: BGC attack, then evaluation without defense, with
/// Prune, and with Randsmooth.
pub fn run_defense_cell(
    scale: ExperimentScale,
    dataset: DatasetKind,
    method: CondensationKind,
    ratio: f32,
) -> DefenseRecord {
    let seed = 29;
    let graph = scale.load(dataset, seed);
    let config = scale.bgc_config(dataset, ratio, seed);
    let victim = scale.victim_spec();
    let options = scale.evaluation_options(seed);
    let outcome = BgcAttack::new(config.clone())
        .run(&graph, method)
        .expect("BGC attack should run for the defense study");

    // Undefended.
    let undefended = evaluate_backdoor(
        &graph,
        &outcome.condensed,
        &outcome.generator,
        &config,
        &victim,
        &options,
    );
    // Prune: defend the condensed graph, retrain the victim.
    let pruned = prune_defense(&outcome.condensed, &PruneConfig::default());
    let prune_eval = evaluate_backdoor(
        &graph,
        &pruned.condensed,
        &outcome.generator,
        &config,
        &victim,
        &options,
    );
    // Randsmooth: same condensed graph, smoothed inference.
    let (randsmooth_cta, randsmooth_asr) = randsmooth_evaluation(
        &graph,
        &outcome.condensed,
        &outcome.generator,
        &config,
        &victim,
        &options,
        &RandsmoothConfig::default(),
    );
    DefenseRecord {
        dataset: dataset.name().to_string(),
        method: method.name().to_string(),
        ratio,
        cta: undefended.cta,
        asr: undefended.asr,
        prune_cta: prune_eval.cta,
        prune_asr: prune_eval.asr,
        randsmooth_cta,
        randsmooth_asr,
    }
}

/// CTA/ASR of a victim trained on `condensed` but evaluated through
/// randomized smoothing.
fn randsmooth_evaluation(
    graph: &Graph,
    condensed: &bgc_graph::CondensedGraph,
    provider: &dyn TriggerProvider,
    config: &bgc_core::BgcConfig,
    victim: &VictimSpec,
    options: &bgc_core::EvaluationOptions,
    smooth: &RandsmoothConfig,
) -> (f32, f32) {
    let mut rng = rng_from_seed(options.seed ^ 0x5107);
    let mut model = victim.architecture.build(
        graph.num_features(),
        victim.hidden_dim,
        graph.num_classes,
        victim.num_layers,
        &mut rng,
    );
    train_on_condensed(model.as_mut(), condensed, &victim.train);
    let full_adj = AdjacencyRef::from_graph(graph);
    let preds = randsmooth_predict(
        model.as_ref(),
        &full_adj,
        &graph.features,
        graph.num_classes,
        smooth,
    );
    let test_preds: Vec<usize> = graph.split.test.iter().map(|&i| preds[i]).collect();
    let test_labels = graph.labels_of(&graph.split.test);
    let cta = accuracy(&test_preds, &test_labels);

    let count = graph.split.test.len().min(options.max_asr_nodes.max(1));
    let picked = sample_without_replacement(graph.split.test.len(), count, &mut rng);
    let mut triggered = Vec::with_capacity(count);
    for &local in &picked {
        let node = graph.split.test[local];
        let attached = attach_to_computation_graph(
            graph,
            node,
            provider.trigger_size(),
            config.khop,
            config.max_neighbors_per_hop,
        );
        let trigger = provider.trigger_for(&full_adj, &graph.features, node);
        let features = attached.combined_features_plain(&trigger);
        let preds = randsmooth_predict(
            model.as_ref(),
            &attached.adjacency_ref(),
            &features,
            graph.num_classes,
            smooth,
        );
        triggered.push(preds[attached.center]);
    }
    let asr = attack_success_rate(&triggered, config.target_class);
    (cta, asr)
}

/// Figure 5: ablation of the poisoned-node selection module (BGC vs BGC_Rand)
/// on the inductive datasets (DC-Graph).
pub fn fig5(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "Figure 5: ablation on poisoned-node selection (DC-Graph)",
        scale.name(),
    );
    for dataset in [DatasetKind::Flickr, DatasetKind::Reddit] {
        let ratio = dataset.paper_condensation_ratios()[1];
        for attack in [AttackKind::BgcRand, AttackKind::Bgc] {
            let mut spec = RunSpec::bgc(dataset, CondensationKind::DcGraph, ratio, scale);
            spec.attack = attack;
            let metrics = run_spec(&spec);
            report.push(metrics.table_row(), &metrics);
        }
    }
    report
}

/// Table V: ablation on the trigger-generator encoder (MLP / GCN /
/// Transformer, GCond).
pub fn table5(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table5",
        "Table V: ablation on the trigger generator (GCond)",
        scale.name(),
    );
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        for generator in GeneratorKind::all() {
            let ratio = dataset.paper_condensation_ratios()[0];
            let spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
            let metrics = run_spec_with(&spec, |config, _| {
                config.generator = generator;
            });
            report.push(
                format!("{:<12} {}", generator.name(), metrics.table_row()),
                &metrics,
            );
        }
    }
    report
}

/// Table VI: directed attack (a single source class is poisoned and
/// evaluated).
pub fn table6(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table6",
        "Table VI: directed attack ablation (GCond)",
        scale.name(),
    );
    for dataset in [DatasetKind::Cora, DatasetKind::Citeseer] {
        let ratio = dataset.paper_condensation_ratios()[1];
        // Undirected BGC reference.
        let spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
        let undirected = run_spec(&spec);
        report.push(
            format!("{:<9} {}", "BGC", undirected.table_row()),
            &undirected,
        );
        // Directed variant: poison class 1, evaluate ASR on class 1 only.
        let source_class = 1;
        let directed = run_spec_with(&spec, |config, _| {
            *config = directed_attack(config, source_class);
        });
        report.push(
            format!("{:<9} {}", "Directed", directed.table_row()),
            &directed,
        );
    }
    report
}

/// Figure 6: ASR as a function of the number of condensation epochs (GCond).
pub fn fig6(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "Figure 6: ASR vs condensation epochs (GCond)",
        scale.name(),
    );
    let epoch_grid: Vec<usize> = match scale {
        ExperimentScale::Quick => vec![5, 10, 20, 40, 80],
        ExperimentScale::Paper => vec![50, 100, 300, 500, 700, 900, 1000],
    };
    for dataset in sweep_datasets(scale, full) {
        let ratio = dataset.paper_condensation_ratios()[1];
        for &epochs in &epoch_grid {
            let spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
            let metrics = run_spec_with(&spec, |config, _| {
                config.condensation.outer_epochs = epochs;
            });
            report.push(
                format!(
                    "{:<10} epochs {:>5}  ASR {:>6.2}  CTA {:>6.2}",
                    dataset.name(),
                    epochs,
                    metrics.asr * 100.0,
                    metrics.cta * 100.0
                ),
                &metrics,
            );
        }
    }
    report
}

/// Table VII: effect of the poisoning ratio / poisoning number.
pub fn table7(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("table7", "Table VII: poisoning budget study", scale.name());
    let methods = [
        CondensationKind::DcGraph,
        CondensationKind::GCond,
        CondensationKind::GCondX,
    ];
    for dataset in sweep_datasets(scale, full) {
        let ratio = dataset.paper_condensation_ratios()[0];
        let budgets: Vec<bgc_graph::PoisonBudget> = match dataset {
            DatasetKind::Cora | DatasetKind::Citeseer => vec![
                bgc_graph::PoisonBudget::Ratio(0.10),
                bgc_graph::PoisonBudget::Ratio(0.15),
                bgc_graph::PoisonBudget::Ratio(0.20),
            ],
            DatasetKind::Flickr => vec![
                bgc_graph::PoisonBudget::Count(60),
                bgc_graph::PoisonBudget::Count(80),
                bgc_graph::PoisonBudget::Count(100),
            ],
            DatasetKind::Reddit => vec![
                bgc_graph::PoisonBudget::Count(130),
                bgc_graph::PoisonBudget::Count(180),
                bgc_graph::PoisonBudget::Count(230),
            ],
        };
        for budget in budgets {
            for method in methods {
                let spec = RunSpec::bgc(dataset, method, ratio, scale);
                let metrics = run_spec_with(&spec, |config, _| {
                    config.poison_budget = match (scale, budget) {
                        (ExperimentScale::Quick, bgc_graph::PoisonBudget::Count(c)) => {
                            bgc_graph::PoisonBudget::Count((c / 10).max(4))
                        }
                        (_, b) => b,
                    };
                });
                report.push(
                    format!("budget {:?} {}", budget, metrics.table_row()),
                    &metrics,
                );
            }
        }
    }
    report
}

/// Table VIII: effect of the number of victim GNN layers (GCond).
pub fn table8(scale: ExperimentScale, full: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table8",
        "Table VIII: number of GNN layers (GCond)",
        scale.name(),
    );
    let mut datasets = sweep_datasets(scale, full);
    datasets.retain(|d| *d != DatasetKind::Reddit); // the paper studies Cora/Citeseer/Flickr
    for dataset in datasets {
        for ratio in dataset.paper_condensation_ratios() {
            for layers in [1usize, 2, 3] {
                let spec = RunSpec::bgc(dataset, CondensationKind::GCond, ratio, scale);
                let metrics = run_spec_with(&spec, |_, victim| {
                    victim.num_layers = layers;
                });
                report.push(
                    format!("layers {} {}", layers, metrics.table_row()),
                    &metrics,
                );
            }
        }
    }
    report
}

/// Figure 8: effect of the trigger size (DC-Graph and GCond on Flickr).
pub fn fig8(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "Figure 8: trigger size study (Flickr)",
        scale.name(),
    );
    let dataset = DatasetKind::Flickr;
    for method in [CondensationKind::DcGraph, CondensationKind::GCond] {
        for ratio in dataset.paper_condensation_ratios() {
            for trigger_size in 1..=4usize {
                let spec = RunSpec::bgc(dataset, method, ratio, scale);
                let metrics = run_spec_with(&spec, |config, _| {
                    config.trigger_size = trigger_size;
                });
                report.push(
                    format!("|g|={} {}", trigger_size, metrics.table_row()),
                    &metrics,
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_datasets() {
        let report = table1(ExperimentScale::Quick);
        let text = report.render();
        for dataset in DatasetKind::all() {
            assert!(text.contains(dataset.name()), "missing {}", dataset.name());
        }
    }

    #[test]
    fn quick_sweep_restricts_datasets() {
        assert_eq!(sweep_datasets(ExperimentScale::Quick, false).len(), 2);
        assert_eq!(sweep_datasets(ExperimentScale::Quick, true).len(), 4);
        assert_eq!(sweep_datasets(ExperimentScale::Paper, false).len(), 4);
    }
}
