//! Prune defense (Dai et al., WWW 2023): a dataset-level defense that removes
//! edges whose endpoints have low feature cosine similarity, on the assumption
//! that backdoor edges connect dissimilar nodes.
//!
//! Applied to a condensed graph (Table IV), pruning removes a fixed fraction
//! of the lowest-similarity synthetic edges before the victim GNN is trained.

use bgc_graph::CondensedGraph;

/// Configuration of the Prune defense.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneConfig {
    /// Fraction of (existing) edges with the lowest cosine similarity to
    /// remove; the paper removes the lowest 20%.
    pub fraction: f32,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self { fraction: 0.2 }
    }
}

/// Outcome of applying the Prune defense.
#[derive(Clone, Debug)]
pub struct PruneOutcome {
    /// The pruned condensed graph handed to the victim.
    pub condensed: CondensedGraph,
    /// Number of (undirected) edges before pruning.
    pub edges_before: usize,
    /// Number of (undirected) edges after pruning.
    pub edges_after: usize,
}

/// Applies the Prune defense to a condensed graph.
pub fn prune_defense(condensed: &CondensedGraph, config: &PruneConfig) -> PruneOutcome {
    assert!(
        (0.0..=1.0).contains(&config.fraction),
        "prune fraction must lie in [0, 1]"
    );
    let count_edges = |g: &CondensedGraph| {
        let n = g.num_nodes();
        let mut edges = 0usize;
        for r in 0..n {
            for c in (r + 1)..n {
                if g.adjacency.get(r, c).abs() > 1e-6 {
                    edges += 1;
                }
            }
        }
        edges
    };
    let edges_before = count_edges(condensed);
    let pruned = condensed.prune_low_similarity_edges(config.fraction);
    let edges_after = count_edges(&pruned);
    PruneOutcome {
        condensed: pruned,
        edges_before,
        edges_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_tensor::Matrix;

    fn toy_condensed() -> CondensedGraph {
        // Nodes 0/1 similar, node 2 dissimilar; edges (0,1), (0,2), (1,2).
        let features = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.1],
            vec![0.9, 0.1, 0.1],
            vec![-1.0, 1.0, -0.5],
        ]);
        let adjacency = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        CondensedGraph::new(features, adjacency, vec![0, 0, 1], 2)
    }

    #[test]
    fn pruning_removes_the_requested_fraction_of_edges() {
        let g = toy_condensed();
        let outcome = prune_defense(&g, &PruneConfig { fraction: 0.34 });
        assert_eq!(outcome.edges_before, 3);
        assert_eq!(outcome.edges_after, 2);
        // The similar pair keeps its edge.
        assert!(outcome.condensed.adjacency.get(0, 1) > 0.0);
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let g = toy_condensed();
        let outcome = prune_defense(&g, &PruneConfig { fraction: 0.0 });
        assert_eq!(outcome.edges_before, outcome.edges_after);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        let g = toy_condensed();
        let _ = prune_defense(&g, &PruneConfig { fraction: 1.5 });
    }
}
