//! # bgc-defense
//!
//! Defenses evaluated against BGC in Table IV of *"Backdoor Graph
//! Condensation"* (ICDE 2025):
//!
//! * [`prune_defense`] — dataset-level pruning of low-similarity edges in the
//!   condensed graph.
//! * [`randsmooth_predict`] — model-level randomized smoothing with majority
//!   voting over sub-sampled graphs.
//!
//! Both defenses exhibit the utility/defense trade-off the paper reports: the
//! ASR reduction they achieve is accompanied by a comparable or larger CTA
//! drop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prune;
pub mod randsmooth;
pub mod registry;

pub use prune::{prune_defense, PruneConfig, PruneOutcome};
pub use randsmooth::{randsmooth_predict, RandsmoothConfig};
pub use registry::{
    defense_names, register_defense, resolve_defense, Defense, DefenseId, PruneDefense,
    RandsmoothDefense,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use bgc_graph::CondensedGraph;
    use bgc_tensor::init::{randn, rng_from_seed};
    use bgc_tensor::Matrix;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Pruning never adds edges and never changes features or labels.
        #[test]
        fn pruning_is_monotone(seed in 0u64..200, fraction in 0.0f32..1.0) {
            let mut rng = rng_from_seed(seed);
            let n = 6;
            let features = randn(n, 4, 0.0, 1.0, &mut rng);
            let mut adjacency = Matrix::zeros(n, n);
            for r in 0..n {
                for c in (r + 1)..n {
                    if (r + c + seed as usize).is_multiple_of(3) {
                        adjacency.set(r, c, 1.0);
                        adjacency.set(c, r, 1.0);
                    }
                }
            }
            let condensed = CondensedGraph::new(features, adjacency, vec![0; n], 1);
            let outcome = prune_defense(&condensed, &PruneConfig { fraction });
            prop_assert!(outcome.edges_after <= outcome.edges_before);
            prop_assert!(outcome.condensed.features.approx_eq(&condensed.features, 0.0));
            prop_assert_eq!(&outcome.condensed.labels, &condensed.labels);
        }
    }
}
