//! The open [`Defense`] trait and the name-keyed defense registry.
//!
//! A defense can hook into the evaluation protocol at two points:
//!
//! * **dataset level** — [`Defense::sanitize`] transforms the condensed graph
//!   before the victim trains on it (Prune);
//! * **model level** — [`Defense::predict`] overrides inference so every
//!   prediction goes through the defense (Randsmooth's majority vote).
//!
//! The experiment harness resolves defenses by name and drives both hooks
//! generically, so a new defense plugs in with [`register_defense`] and never
//! touches the evaluation crates.

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use bgc_graph::CondensedGraph;
use bgc_nn::{AdjacencyRef, GnnModel};
use bgc_registry::{Named, Registry};
use bgc_tensor::Matrix;

use crate::prune::{prune_defense, PruneConfig};
use crate::randsmooth::{randsmooth_predict, RandsmoothConfig};

/// A defense against backdoored condensed graphs (Table IV).
pub trait Defense: Send + Sync {
    /// Display name used in result tables, canonical keys and the CLI.
    fn name(&self) -> &str;

    /// Dataset-level hook: transforms the condensed graph before victim
    /// training.  The default is the identity (model-level defenses).
    fn sanitize(&self, condensed: &CondensedGraph) -> CondensedGraph {
        condensed.clone()
    }

    /// Model-level hook: predicts labels for every node of `(adj, features)`
    /// through the defense, or `None` to use the model's plain forward pass
    /// (dataset-level defenses).
    fn predict(
        &self,
        _model: &dyn GnnModel,
        _adj: &AdjacencyRef,
        _features: &Matrix,
        _num_classes: usize,
    ) -> Option<Vec<usize>> {
        None
    }
}

/// Name handle of a registered defense — what experiment keys store and the
/// CLI parses.  Comparison and hashing use the exact spelling.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefenseId(String);

impl DefenseId {
    /// Wraps a name verbatim.
    pub fn new(name: impl Into<String>) -> Self {
        DefenseId(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DefenseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DefenseId {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(s.into())
    }
}

impl From<&str> for DefenseId {
    /// Adopts the canonical registry spelling when the name matches a
    /// registered defense case-insensitively; keeps the input otherwise.
    fn from(s: &str) -> Self {
        let canonical = resolve_defense(s).map(|d| d.name().to_string());
        DefenseId(canonical.unwrap_or_else(|| s.to_string()))
    }
}

impl From<String> for DefenseId {
    fn from(s: String) -> Self {
        s.as_str().into()
    }
}

impl Named for dyn Defense {
    fn name(&self) -> &str {
        Defense::name(self)
    }
}

fn defense_registry() -> &'static Registry<dyn Defense> {
    static REGISTRY: OnceLock<Registry<dyn Defense>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Registry::new(vec![
            Arc::new(PruneDefense::default()) as Arc<dyn Defense>,
            Arc::new(RandsmoothDefense::default()),
        ])
    })
}

/// Registers a defense under its [`Defense::name`].  A defense with the same
/// name (case-insensitively) replaces the previous entry, so tests can shadow
/// built-ins; note that the on-disk experiment cell cache is keyed by name,
/// so delete `target/experiments/` after shadowing a built-in (or use an
/// in-memory runner) to avoid being served the old implementation's cached
/// cells.  The name `standard` is reserved for the undefended evaluation
/// mode and is rejected.
pub fn register_defense(defense: Arc<dyn Defense>) {
    assert!(
        !defense.name().eq_ignore_ascii_case("standard"),
        "the defense name 'standard' is reserved for the undefended evaluation mode"
    );
    defense_registry().register(defense);
}

/// Looks up a registered defense by name (exact first, then
/// case-insensitive).
pub fn resolve_defense(name: &str) -> Option<Arc<dyn Defense>> {
    defense_registry().resolve(name)
}

/// Registered defense names in registration order (built-ins first).
pub fn defense_names() -> Vec<String> {
    defense_registry().names()
}

/// The Prune defense as a registry entry: drops the lowest-similarity edges
/// of the condensed graph before victim training.
#[derive(Default)]
pub struct PruneDefense {
    /// Pruning configuration.
    pub config: PruneConfig,
}

impl Defense for PruneDefense {
    fn name(&self) -> &str {
        "prune"
    }

    fn sanitize(&self, condensed: &CondensedGraph) -> CondensedGraph {
        prune_defense(condensed, &self.config).condensed
    }
}

/// The Randsmooth defense as a registry entry: majority-vote predictions
/// over randomly sub-sampled graphs.
#[derive(Default)]
pub struct RandsmoothDefense {
    /// Smoothing configuration.
    pub config: RandsmoothConfig,
}

impl Defense for RandsmoothDefense {
    fn name(&self) -> &str {
        "randsmooth"
    }

    fn predict(
        &self,
        model: &dyn GnnModel,
        adj: &AdjacencyRef,
        features: &Matrix,
        num_classes: usize,
    ) -> Option<Vec<usize>> {
        Some(randsmooth_predict(
            model,
            adj,
            features,
            num_classes,
            &self.config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_defenses_resolve_by_name() {
        for name in ["prune", "randsmooth"] {
            let defense = resolve_defense(name).expect("builtin registered");
            assert_eq!(defense.name(), name);
            let upper = resolve_defense(&name.to_ascii_uppercase()).unwrap();
            assert_eq!(upper.name(), name);
        }
        assert!(resolve_defense("no-such-defense").is_none());
        let names = defense_names();
        assert!(names.iter().any(|n| n == "prune"));
        assert!(names.iter().any(|n| n == "randsmooth"));
    }

    #[test]
    fn defense_ids_canonicalize_known_spellings() {
        assert_eq!(DefenseId::from("PRUNE").as_str(), "prune");
        assert_eq!(DefenseId::from("Randsmooth").as_str(), "randsmooth");
        assert_eq!(DefenseId::from("novel").as_str(), "novel");
    }

    #[test]
    fn prune_sanitizes_and_randsmooth_predicts() {
        use bgc_tensor::init::{randn, rng_from_seed};
        let mut rng = rng_from_seed(5);
        let features = randn(6, 4, 0.0, 1.0, &mut rng);
        let mut adjacency = bgc_tensor::Matrix::zeros(6, 6);
        for r in 0..6 {
            for c in (r + 1)..6 {
                adjacency.set(r, c, 1.0);
                adjacency.set(c, r, 1.0);
            }
        }
        let condensed = CondensedGraph::new(features, adjacency, vec![0; 6], 1);
        let prune = resolve_defense("prune").unwrap();
        let sanitized = prune.sanitize(&condensed);
        let before = condensed
            .adjacency
            .data()
            .iter()
            .filter(|&&v| v != 0.0)
            .count();
        let after = sanitized
            .adjacency
            .data()
            .iter()
            .filter(|&&v| v != 0.0)
            .count();
        assert!(
            after < before,
            "prune must drop edges ({} -> {})",
            before,
            after
        );
        // Randsmooth leaves the graph alone (model-level defense).
        let randsmooth = resolve_defense("randsmooth").unwrap();
        let same = randsmooth.sanitize(&condensed);
        assert!(same.features.approx_eq(&condensed.features, 0.0));
    }
}
