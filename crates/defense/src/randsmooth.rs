//! Randsmooth defense (Zhang et al., SACMAT 2021): a model-level randomized
//! smoothing defense.  At inference time the input graph is randomly
//! sub-sampled `d` times (edges kept with a fixed probability), the model
//! votes over the `d` predictions, and the majority class wins.
//!
//! Against BGC (Table IV) smoothing can drop some trigger edges, but it also
//! drops benign edges, so its ASR reduction comes at a CTA cost.

use rand::rngs::StdRng;
use rand::Rng;

use bgc_nn::{AdjacencyRef, GnnModel};
use bgc_tensor::init::rng_from_seed;
use bgc_tensor::Matrix;

/// Configuration of the Randsmooth defense.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandsmoothConfig {
    /// Number of sub-sampled graphs (votes).
    pub num_samples: usize,
    /// Probability of keeping each (off-diagonal) edge in a sample.
    pub keep_probability: f32,
    /// Random seed.
    pub seed: u64,
}

impl Default for RandsmoothConfig {
    fn default() -> Self {
        Self {
            num_samples: 5,
            keep_probability: 0.7,
            seed: 0,
        }
    }
}

/// Randomly sub-samples a dense normalized adjacency by dropping off-diagonal
/// entries, then re-normalizing rows so the propagation stays a weighted
/// average.
fn subsample_dense(adj: &Matrix, keep: f32, rng: &mut StdRng) -> Matrix {
    let n = adj.rows();
    let mut out = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            let v = adj.get(r, c);
            if v == 0.0 {
                continue;
            }
            if r == c || rng.gen::<f32>() < keep {
                out.set(r, c, v);
            }
        }
    }
    // Row re-normalization keeps the operator a convex combination.
    for r in 0..n {
        let sum: f32 = out.row(r).iter().sum();
        if sum > 1e-8 {
            for v in out.row_mut(r) {
                *v /= sum;
            }
        }
    }
    out
}

/// Predicts classes with randomized smoothing over `d` sub-sampled graphs and
/// majority voting.
pub fn randsmooth_predict(
    model: &dyn GnnModel,
    adj: &AdjacencyRef,
    features: &Matrix,
    num_classes: usize,
    config: &RandsmoothConfig,
) -> Vec<usize> {
    assert!(
        config.num_samples >= 1,
        "need at least one smoothing sample"
    );
    assert!(
        (0.0..=1.0).contains(&config.keep_probability),
        "keep probability must lie in [0, 1]"
    );
    let mut rng = rng_from_seed(config.seed ^ 0x5a0d);
    let dense = match adj {
        AdjacencyRef::Dense(d) => (**d).clone(),
        AdjacencyRef::Sparse(s) => s.to_dense(),
        AdjacencyRef::Blocks { .. } => {
            unreachable!("randomized smoothing operates on whole (sub)graphs, not sampled blocks")
        }
    };
    let n = features.rows();
    let mut votes = vec![vec![0usize; num_classes]; n];
    for _ in 0..config.num_samples {
        let sampled = subsample_dense(&dense, config.keep_probability, &mut rng);
        let preds = model.predict(&AdjacencyRef::dense(sampled), features);
        for (node, &p) in preds.iter().enumerate() {
            if p < num_classes {
                votes[node][p] += 1;
            }
        }
    }
    votes
        .into_iter()
        .map(|v| {
            v.iter()
                .enumerate()
                .max_by_key(|&(_, &count)| count)
                .map(|(c, _)| c)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgc_nn::GnnArchitecture;
    use bgc_tensor::init::{randn, rng_from_seed};
    use bgc_tensor::CsrMatrix;

    fn toy_model_and_graph() -> (Box<dyn GnnModel>, AdjacencyRef, Matrix) {
        let mut rng = rng_from_seed(0);
        let model = GnnArchitecture::Gcn.build(6, 8, 3, 2, &mut rng);
        let adj = AdjacencyRef::sparse(
            CsrMatrix::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (6, 7)])
                .symmetrize()
                .gcn_normalize(),
        );
        let features = randn(8, 6, 0.0, 1.0, &mut rng);
        (model, adj, features)
    }

    #[test]
    fn smoothing_returns_valid_classes() {
        let (model, adj, features) = toy_model_and_graph();
        let preds = randsmooth_predict(
            model.as_ref(),
            &adj,
            &features,
            3,
            &RandsmoothConfig::default(),
        );
        assert_eq!(preds.len(), 8);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn keep_probability_one_matches_plain_prediction() {
        let (model, adj, features) = toy_model_and_graph();
        let config = RandsmoothConfig {
            num_samples: 3,
            keep_probability: 1.0,
            seed: 9,
        };
        let smoothed = randsmooth_predict(model.as_ref(), &adj, &features, 3, &config);
        // With every edge kept, each vote is the row-renormalized adjacency —
        // close to (but not identical to) the symmetric normalization; the
        // voting itself must still be deterministic and unanimous.
        let again = randsmooth_predict(model.as_ref(), &adj, &features, 3, &config);
        assert_eq!(smoothed, again);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn invalid_keep_probability_panics() {
        let (model, adj, features) = toy_model_and_graph();
        let config = RandsmoothConfig {
            keep_probability: 2.0,
            ..Default::default()
        };
        let _ = randsmooth_predict(model.as_ref(), &adj, &features, 3, &config);
    }
}
