//! End-to-end fixture tests: `bgc_lint::lint_workspace` over the mini
//! workspace in `tests/fixtures/ws`, which has a positive, negative,
//! waived and baselined fixture for every rule.

use std::path::{Path, PathBuf};

use bgc_lint::{lint_files, lint_workspace, render_json, workspace_files, Baseline, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn fixture_workspace_reports_exactly_the_planted_violations() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");

    let by_rule = |rule: Rule| -> Vec<(&str, usize)> {
        report
            .violations
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| (f.file.as_str(), f.line))
            .collect()
    };

    // poison-unsafe-lock: the pre-fix memo-lock shape fires on both the
    // Mutex and RwLock sites; the relock'd negative fixture is silent.
    let poison = by_rule(Rule::PoisonUnsafeLock);
    assert_eq!(poison.len(), 2, "{poison:?}");
    assert!(poison
        .iter()
        .all(|(file, _)| *file == "crates/demo/src/poison_positive.rs"));

    // unchecked-panic: 3 library findings in panic_positive; the test-scope
    // copies, the waived site and the baselined sites are silent.
    let panics = by_rule(Rule::UncheckedPanic);
    assert_eq!(panics.len(), 3, "{panics:?}");
    assert!(panics
        .iter()
        .all(|(file, _)| *file == "crates/demo/src/panic_positive.rs"));

    // nondet-iteration: only the designated order-sensitive path fires.
    let nondet = by_rule(Rule::NondetIteration);
    assert_eq!(nondet.len(), 2, "{nondet:?}");
    assert!(nondet
        .iter()
        .all(|(file, _)| *file == "crates/eval/src/runner.rs"));

    // wall-clock-in-compute: both reads outside the allowlist; the
    // allowlisted bench copy is silent.
    let clocks = by_rule(Rule::WallClockInCompute);
    assert_eq!(clocks.len(), 2, "{clocks:?}");
    assert!(clocks
        .iter()
        .all(|(file, _)| *file == "crates/demo/src/wallclock_positive.rs"));

    // unregistered-fault-point: the two bogus literals only; the
    // registered points (including the daemon crate's `daemon.*` set) and
    // the test-scope toy point are silent.
    let faults = by_rule(Rule::UnregisteredFaultPoint);
    assert_eq!(faults.len(), 2, "{faults:?}");
    assert_eq!(faults[0].0, "crates/daemon/src/server.rs");
    assert_eq!(faults[1].0, "crates/demo/src/fault_points.rs");

    // Waiver hygiene: one unused waiver, one malformed (reason-less).
    assert_eq!(by_rule(Rule::UnusedWaiver).len(), 1);
    assert_eq!(by_rule(Rule::MalformedWaiver).len(), 1);

    // Bookkeeping: one waived finding, three baselined, nothing stale.
    assert_eq!(report.waived, 1);
    assert_eq!(report.baselined, 3);
    assert!(report.stale.is_empty(), "{:?}", report.stale);
    assert_eq!(report.violations.len(), 13, "{:#?}", report.violations);
}

#[test]
fn stale_baseline_entries_are_detected() {
    let root = fixture_root();
    let files = workspace_files(&root).expect("fixture files");
    // A baseline that over-admits (3 > the 1 actual finding), admits a
    // vanished file, and baselines a non-baselineable rule: all stale.
    let baseline = Baseline::parse(
        r#"{
            "unchecked-panic": {
                "crates/demo/src/panic_baselined.rs": 3,
                "crates/demo/src/deleted_long_ago.rs": 2
            },
            "poison-unsafe-lock": { "crates/demo/src/poison_positive.rs": 2 }
        }"#,
    )
    .expect("parses");
    let report = lint_files(&root, &files, &baseline, bgc_lint::FAULT_POINTS)
        .expect("fixture workspace lints");
    assert_eq!(report.stale.len(), 3, "{:?}", report.stale);
    assert!(!report.is_clean());
}

#[test]
fn json_output_round_trips_and_counts_match() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    let json = render_json(&report);
    let value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(
        value
            .get("violations")
            .and_then(|v| v.as_array())
            .map(|a| a.len()),
        Some(report.violations.len())
    );
    assert_eq!(value.get("clean").and_then(|v| v.as_bool()), Some(false));
    // Every violation row carries a file:line span and a rule name.
    let rows = value
        .get("violations")
        .and_then(|v| v.as_array())
        .expect("violations array");
    for row in rows {
        assert!(row.get("rule").and_then(|v| v.as_str()).is_some());
        assert!(row.get("file").and_then(|v| v.as_str()).is_some());
        assert!(row.get("line").and_then(|v| v.as_u64()).is_some());
        assert!(row.get("message").and_then(|v| v.as_str()).is_some());
    }
}

#[test]
fn violations_are_sorted_and_deterministic() {
    let first = lint_workspace(&fixture_root()).expect("lints");
    let second = lint_workspace(&fixture_root()).expect("lints");
    let spans = |r: &bgc_lint::LintReport| -> Vec<(String, usize)> {
        r.violations
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect()
    };
    assert_eq!(spans(&first), spans(&second));
    let mut sorted = spans(&first);
    sorted.sort();
    assert_eq!(spans(&first), sorted, "violations are file:line sorted");
}
