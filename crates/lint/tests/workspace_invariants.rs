//! Invariant tests against the *real* workspace (not fixtures):
//!
//! * `bgc lint` runs clean — the acceptance bar for every future change;
//! * the fault-point registry `bgc_runtime::FAULT_POINTS` exactly matches
//!   the set of `fault::fire`/`fire_io` literals in non-test library code,
//!   in both directions (no unregistered firing, no dead registry entry).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use bgc_lint::lexer::{test_scope, tokenize, TokenKind};
use bgc_lint::{lint_workspace, workspace_files, FAULT_POINTS};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let report = lint_workspace(&repo_root()).expect("workspace lints");
    assert!(
        report.is_clean(),
        "bgc lint must stay clean; run `cargo run -p bgc-bench --bin bgc -- lint` \
         and fix, waive or (for unchecked-panic only) re-baseline:\n{}",
        bgc_lint::render_human(&report)
    );
    assert!(report.files_scanned > 50, "the scan covered the workspace");
}

#[test]
fn fault_point_registry_matches_fire_call_sites_exactly() {
    let root = repo_root();
    let mut fired: BTreeSet<String> = BTreeSet::new();
    for path in workspace_files(&root).expect("workspace files") {
        let source = std::fs::read_to_string(&path).expect("readable source");
        let tokens = tokenize(&source);
        let in_test = test_scope(&tokens);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        for (k, &idx) in code.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let tok = &tokens[idx];
            if tok.kind == TokenKind::Ident
                && matches!(tok.text.as_str(), "fire" | "fire_io")
                && k + 2 < code.len()
                && tokens[code[k + 1]].text == "("
                && tokens[code[k + 2]].kind == TokenKind::Str
            {
                fired.insert(tokens[code[k + 2]].text.clone());
            }
        }
    }
    let registered: BTreeSet<String> = FAULT_POINTS.iter().map(|p| p.to_string()).collect();
    assert_eq!(
        fired, registered,
        "bgc_runtime::FAULT_POINTS and the non-test fault::fire call sites \
         must match exactly (left: fired, right: registered)"
    );
}

#[test]
fn daemon_fault_points_are_registered() {
    for point in ["daemon.accept", "daemon.request", "daemon.persist"] {
        assert!(
            FAULT_POINTS.contains(&point),
            "{point} must stay in bgc_runtime::FAULT_POINTS"
        );
    }
}

#[test]
fn committed_baseline_is_byte_stable() {
    // Regenerating the committed baseline from the current findings must
    // reproduce it byte for byte — proof that it is neither stale nor
    // hand-edited out of sync.
    let root = repo_root();
    let report = lint_workspace(&root).expect("workspace lints");
    let regenerated = bgc_lint::Baseline::from_counts(&report.counts).to_json();
    let committed = std::fs::read_to_string(root.join(bgc_lint::BASELINE_FILE))
        .expect("lint-baseline.json is committed");
    assert_eq!(
        committed, regenerated,
        "lint-baseline.json drifted; regenerate with `bgc lint --write-baseline`"
    );
}
