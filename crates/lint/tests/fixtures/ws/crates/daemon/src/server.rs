//! Fixture for `unregistered-fault-point` over a daemon-style crate: the
//! three registered `daemon.*` points are silent, one bogus daemon literal
//! is a violation (1 finding).

use bgc_runtime::fault;

pub fn accept() {
    fault::fire("daemon.accept");
}

pub fn request() {
    fault::fire("daemon.request");
}

pub fn persist() -> std::io::Result<()> {
    fault::fire_io("daemon.persist")
}

pub fn unregistered() {
    fault::fire("daemon.bogus");
}
