//! Negative fixture for the artifact-store crate: `crates/store/` is on
//! the wall-clock allowlist (lock leases and wait deadlines need real
//! time) and its three `store.*` fault points are registered, so this
//! file produces zero findings.

use std::time::Instant;

use bgc_runtime::fault;

pub fn locked_read() -> std::io::Result<()> {
    let _deadline = Instant::now();
    fault::fire("store.lock");
    fault::fire("store.read");
    fault::fire_io("store.write")
}
