//! Negative fixture for `wall-clock-in-compute`: this path starts with
//! `crates/bench/`, which is allowlisted — timing reports belong here.

use std::time::Instant;

pub fn timed<T>(work: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let result = work();
    (result, started.elapsed().as_secs_f64())
}
