//! Negative fixtures for `nondet-iteration` and `poison-unsafe-lock`: a
//! `HashMap` in a file that is *not* designated order-sensitive is fine,
//! and `unwrap_or_else`/`unwrap_or` are not `unwrap`.

use std::collections::HashMap;

pub fn histogram(keys: &[u32]) -> usize {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for key in keys {
        *counts.entry(*key).or_insert(0) += 1;
    }
    counts.len()
}

pub fn fallback(values: &[f32]) -> f32 {
    values.first().copied().unwrap_or(0.0)
}
