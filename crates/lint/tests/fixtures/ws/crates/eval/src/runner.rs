//! Positive fixture for `nondet-iteration`: this path ends with
//! `crates/eval/src/runner.rs`, a designated order-sensitive file, so a
//! `HashMap` outside the `use` line is a violation (2 findings: the type
//! annotation and the constructor).

use std::collections::HashMap;

pub fn collect(pairs: &[(String, f32)]) -> Vec<(String, f32)> {
    let mut results: HashMap<String, f32> = HashMap::new();
    for (key, value) in pairs {
        results.insert(key.clone(), *value);
    }
    results.into_iter().collect()
}
