//! Positive fixture for `wall-clock-in-compute`: `Instant::now()` and
//! `SystemTime` in a crate outside the bench/runtime allowlist (2 findings;
//! the `use` line itself is not flagged).

use std::time::{Instant, SystemTime};

pub fn stamp() -> f64 {
    let t = Instant::now();
    let _wall = SystemTime::now();
    t.elapsed().as_secs_f64()
}
