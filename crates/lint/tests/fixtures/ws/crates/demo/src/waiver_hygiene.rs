//! Waiver-hygiene fixture: an unused waiver (suppresses nothing) and a
//! malformed waiver (missing reason) are themselves violations, so waivers
//! can never silently rot.

// bgc-lint: allow(wall-clock-in-compute) — nothing on the next line reads a clock
pub fn quiet() -> u32 {
    7
}

// bgc-lint: allow(unchecked-panic)
pub fn also_quiet() -> u32 {
    11
}
