//! Fixture for `unregistered-fault-point`: a registered point passes, an
//! unregistered literal is a violation (1 finding), and toy points inside
//! test scope are ignored.

use bgc_runtime::fault;

pub fn registered() {
    fault::fire("trainer.epoch");
}

pub fn unregistered() {
    fault::fire("demo.bogus");
}

#[cfg(test)]
mod tests {
    use bgc_runtime::fault;

    #[test]
    fn toy_points_are_fine_in_tests() {
        fault::fire("toy.point");
    }
}
