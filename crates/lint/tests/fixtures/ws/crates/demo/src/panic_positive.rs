//! Positive fixture for `unchecked-panic`: unwrap/expect/panic! in library
//! code (3 findings), while the same constructs inside `#[cfg(test)]` are
//! ignored.

pub fn first(values: &[f32]) -> f32 {
    let head = values.first().unwrap();
    let checked = values.last().expect("non-empty");
    if *head > *checked {
        panic!("unsorted");
    }
    *head
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1.0_f32];
        v.first().unwrap();
        v.last().expect("non-empty");
        if v.is_empty() {
            panic!("unreachable");
        }
    }
}
