//! Baselined fixture for `unchecked-panic`: one pre-existing finding
//! admitted by the fixture workspace's lint-baseline.json — reported as
//! baselined, not as a violation, and not stale (count matches exactly).

pub fn legacy(values: &[f32]) -> f32 {
    *values.first().expect("legacy call sites guarantee non-empty input")
}
