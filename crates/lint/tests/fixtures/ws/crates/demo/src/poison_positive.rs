//! Positive fixture for `poison-unsafe-lock`: the exact memo-lock shape the
//! workspace used before `bgc_runtime::relock` (condense/methods.rs and
//! core/selector.rs pre-fix), plus the RwLock variant from the registry.
//! The unwrap/expect here also fire `unchecked-panic`; the fixture baseline
//! admits those two so the lock findings stand alone.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, RwLock};

static MEMO: OnceLock<Mutex<BTreeMap<u64, f32>>> = OnceLock::new();
static TABLE: OnceLock<RwLock<Vec<String>>> = OnceLock::new();

pub fn cached(key: u64) -> Option<f32> {
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    let guard = memo.lock().unwrap();
    guard.get(&key).copied()
}

pub fn names() -> Vec<String> {
    let table = TABLE.get_or_init(|| RwLock::new(Vec::new()));
    table.read().expect("registry lock").clone()
}
