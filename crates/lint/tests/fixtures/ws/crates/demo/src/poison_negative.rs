//! Negative fixture for `poison-unsafe-lock`: the repaired memo-lock shape —
//! poison recovery through `bgc_runtime::relock`, as in condense/methods.rs
//! and core/selector.rs post-fix.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, RwLock};

static MEMO: OnceLock<Mutex<BTreeMap<u64, f32>>> = OnceLock::new();
static TABLE: OnceLock<RwLock<Vec<String>>> = OnceLock::new();

pub fn cached(key: u64) -> Option<f32> {
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    let guard = bgc_runtime::relock(memo);
    guard.get(&key).copied()
}

pub fn names() -> Vec<String> {
    let table = TABLE.get_or_init(|| RwLock::new(Vec::new()));
    bgc_runtime::relock_read(table).clone()
}
