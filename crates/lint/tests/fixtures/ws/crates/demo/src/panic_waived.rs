//! Waived fixture for `unchecked-panic`: a justified inline waiver
//! suppresses the finding on the next line; nothing is reported.

pub fn modulo(values: &[f32], index: usize) -> f32 {
    // bgc-lint: allow(unchecked-panic) — index is reduced modulo len, the slice is non-empty by contract
    *values.get(index % values.len()).unwrap()
}
