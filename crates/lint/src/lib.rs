//! `bgc-lint` — the workspace invariant lint pass.
//!
//! A self-contained static-analysis pass (hand-rolled lexer, no external
//! parser) that enforces the determinism, panic-safety and fault-point
//! invariants the BGC reproduction's correctness arguments rest on:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `poison-unsafe-lock` | lock poisoning recovers via `bgc_runtime::relock`, never cascades panics |
//! | `unchecked-panic` | library code returns typed `BgcError`s (ratcheted by `lint-baseline.json`) |
//! | `nondet-iteration` | canonicalization/persist/report paths never iterate hash maps |
//! | `wall-clock-in-compute` | compute crates are clock-free; timing lives in bench/runtime |
//! | `unregistered-fault-point` | every `fault::fire` literal is in `bgc_runtime::FAULT_POINTS` |
//!
//! Findings can be waived inline (`// bgc-lint: allow(rule) — reason`) or,
//! for `unchecked-panic` only, admitted by the committed baseline, which
//! may only ever shrink (see [`baseline`]).  The pass scans
//! `crates/*/src/**/*.rs` — including this crate, so the lint itself is
//! written panic-free.
//!
//! Drive it with `bgc lint` (exit 5 on violations, 6 on a stale baseline)
//! or [`lint_workspace`] directly.  See `docs/lint.md`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde_json::Value;

pub use baseline::{Baseline, StaleEntry};
pub use bgc_runtime::FAULT_POINTS;
pub use rules::{Rule, ALL_RULES};

/// The baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// A confirmed violation (post waiver/baseline filtering).
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation of the violation.
    pub message: String,
}

/// The result of a lint pass over the workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Finding>,
    /// Baseline entries that must be shrunk or removed.
    pub stale: Vec<StaleEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by inline waivers.
    pub waived: usize,
    /// Findings admitted by the committed baseline.
    pub baselined: usize,
    /// Current per-(rule, file) counts of baselineable findings (after
    /// waivers) — the input to `--write-baseline`.
    pub counts: BTreeMap<(Rule, String), usize>,
}

impl LintReport {
    /// Whether the workspace is clean: no violations and no stale
    /// baseline entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Lints the workspace rooted at `root`: scans `crates/*/src/**/*.rs`
/// against the committed baseline and `bgc_runtime::FAULT_POINTS`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let baseline = Baseline::load(&root.join(BASELINE_FILE))?;
    let files = workspace_files(root)?;
    lint_files(root, &files, &baseline, bgc_runtime::FAULT_POINTS)
}

/// Collects the lintable sources: every `.rs` file under `crates/*/src`,
/// skipping `tests`, `fixtures` and `target` path components.  Sorted for
/// deterministic output.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for crate_dir in sorted_dir(&crates_dir)? {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively gathers `.rs` files under `dir`, skipping excluded
/// directory names.
fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in sorted_dir(dir)? {
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if entry.is_dir() {
            if matches!(name.as_str(), "tests" | "fixtures" | "target") {
                continue;
            }
            collect_rs(&entry, files)?;
        } else if name.ends_with(".rs") {
            files.push(entry.clone());
        }
    }
    Ok(())
}

/// Directory entries of `dir`, sorted by path; an unreadable directory is
/// an error (the lint must never silently skip sources).
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let reader = std::fs::read_dir(dir)
        .map_err(|err| format!("cannot read directory {}: {err}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in reader {
        let entry = entry.map_err(|err| format!("cannot list {}: {err}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Lints an explicit file list against an explicit baseline and
/// fault-point registry (the testable core of [`lint_workspace`]).
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    baseline: &Baseline,
    fault_points: &[&str],
) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    // Raw survivors of waiver filtering, keyed for baseline application.
    let mut surviving: Vec<Finding> = Vec::new();

    for path in files {
        let rel = relative_path(root, path);
        let source = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        report.files_scanned += 1;

        let tokens = lexer::tokenize(&source);
        let in_test = lexer::test_scope(&tokens);
        let (waivers, waiver_findings) = rules::parse_waivers(&tokens);
        let mut raw = rules::run_rules(&rel, &tokens, &in_test, fault_points);
        raw.extend(waiver_findings);

        let mut waiver_used = vec![false; waivers.len()];
        for finding in raw {
            // A waiver covers its own line (trailing comment) and the
            // next line (comment above the code).
            let waived = waivers.iter().enumerate().find(|(_, w)| {
                w.rule == finding.rule && (w.line == finding.line || w.line + 1 == finding.line)
            });
            if let Some((idx, _)) = waived {
                waiver_used[idx] = true;
                report.waived += 1;
                continue;
            }
            surviving.push(Finding {
                rule: finding.rule,
                file: rel.clone(),
                line: finding.line,
                message: finding.message,
            });
        }
        for (idx, used) in waiver_used.iter().enumerate() {
            if !used {
                surviving.push(Finding {
                    rule: Rule::UnusedWaiver,
                    file: rel.clone(),
                    line: waivers[idx].line,
                    message: format!(
                        "waiver for `{}` suppressed nothing; remove it",
                        waivers[idx].rule.name()
                    ),
                });
            }
        }
    }

    // Count baselineable findings per (rule, file), then either admit a
    // file's findings (count within baseline) or surface them all.
    for finding in &surviving {
        if finding.rule.baselineable() {
            *report
                .counts
                .entry((finding.rule, finding.file.clone()))
                .or_insert(0) += 1;
        }
    }
    for finding in surviving {
        if finding.rule.baselineable() {
            let found = report
                .counts
                .get(&(finding.rule, finding.file.clone()))
                .copied()
                .unwrap_or(0);
            let allowed = baseline.allowed(finding.rule, &finding.file);
            if found <= allowed {
                report.baselined += 1;
                continue;
            }
            report.violations.push(Finding {
                message: format!(
                    "{} [file has {found} findings, baseline allows {allowed}]",
                    finding.message
                ),
                ..finding
            });
            continue;
        }
        report.violations.push(finding);
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.stale = baseline.stale_entries(&report.counts);
    Ok(report)
}

/// Finds the workspace root by ascending from the current directory until
/// a directory containing both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir()
        .map_err(|err| format!("cannot determine the current directory: {err}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    start.display()
                ))
            }
        }
    }
}

/// `path` relative to `root` with `/` separators (the spelling used in
/// findings, waiver docs and the baseline).
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Renders the report for humans: one `file:line: rule: message` per
/// violation, stale entries, then a summary line.
pub fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    for finding in &report.violations {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            finding.file,
            finding.line,
            finding.rule.name(),
            finding.message
        ));
    }
    for stale in &report.stale {
        out.push_str(&format!(
            "lint-baseline.json: stale entry {} / {} (allowed {}, found {}): {}\n",
            stale.rule, stale.file, stale.allowed, stale.found, stale.why
        ));
    }
    out.push_str(&format!(
        "bgc-lint: {} file(s) scanned, {} violation(s), {} stale baseline entr{}, {} waived, {} baselined\n",
        report.files_scanned,
        report.violations.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
        report.waived,
        report.baselined,
    ));
    out
}

/// Renders the report as a JSON document (for CI and tooling).
pub fn render_json(report: &LintReport) -> String {
    let violations: Vec<Value> = report
        .violations
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.name().to_string())),
                ("file".to_string(), Value::String(f.file.clone())),
                ("line".to_string(), Value::Number(f.line as f64)),
                ("message".to_string(), Value::String(f.message.clone())),
            ])
        })
        .collect();
    let stale: Vec<Value> = report
        .stale
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(s.rule.clone())),
                ("file".to_string(), Value::String(s.file.clone())),
                ("allowed".to_string(), Value::Number(s.allowed as f64)),
                ("found".to_string(), Value::Number(s.found as f64)),
                ("why".to_string(), Value::String(s.why.clone())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        (
            "files_scanned".to_string(),
            Value::Number(report.files_scanned as f64),
        ),
        ("violations".to_string(), Value::Array(violations)),
        ("stale_baseline".to_string(), Value::Array(stale)),
        ("waived".to_string(), Value::Number(report.waived as f64)),
        (
            "baselined".to_string(),
            Value::Number(report.baselined as f64),
        ),
        ("clean".to_string(), Value::Bool(report.is_clean())),
    ]);
    let mut text = doc.to_json_string_pretty();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderers_cover_violations_and_stale_entries() {
        let report = LintReport {
            violations: vec![Finding {
                rule: Rule::UncheckedPanic,
                file: "crates/a/src/lib.rs".to_string(),
                line: 7,
                message: ".unwrap() in library code".to_string(),
            }],
            stale: vec![StaleEntry {
                rule: "unchecked-panic".to_string(),
                file: "crates/b/src/lib.rs".to_string(),
                allowed: 2,
                found: 1,
                why: "shrink".to_string(),
            }],
            files_scanned: 2,
            waived: 1,
            baselined: 3,
            counts: BTreeMap::new(),
        };
        let human = render_human(&report);
        assert!(human.contains("crates/a/src/lib.rs:7: unchecked-panic:"));
        assert!(human.contains("stale entry unchecked-panic / crates/b/src/lib.rs"));
        assert!(human.contains("2 file(s) scanned, 1 violation(s), 1 stale baseline entry"));
        let json = render_json(&report);
        let value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value.get("files_scanned").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(value.get("clean").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            value
                .get("violations")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn clean_report_is_clean() {
        let report = LintReport::default();
        assert!(report.is_clean());
        let json = render_json(&report);
        let value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value.get("clean").and_then(|v| v.as_bool()), Some(true));
    }
}
