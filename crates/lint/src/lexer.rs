//! A hand-rolled Rust lexer for the lint pass.
//!
//! Following the workspace's offline-shim philosophy this is not a `syn`
//! dependency but a small, purpose-built tokenizer: it understands exactly
//! what the rules need — identifiers, punctuation, string/char literals
//! (including raw strings), line and nested block comments, lifetimes —
//! and attaches a 1-based line to every token.  A second pass computes
//! *test scope*: the token ranges covered by `#[test]` / `#[cfg(test)]`
//! items and inline `mod tests { … }` modules, which every rule except the
//! waiver machinery skips.
//!
//! Known limitation: `#[cfg(test)] mod tests;` referencing an out-of-line
//! file does not mark that file as test code (the lexer sees one file at a
//! time).  The workspace keeps its test modules inline.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Number,
    /// String, raw-string, byte-string or char literal; `text` holds the
    /// *inner* (unprocessed) contents without quotes.
    Str,
    /// One punctuation character.
    Punct,
    /// `// …` comment; `text` holds the contents after the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled); `text` holds the contents.
    BlockComment,
    /// `'a`-style lifetime (or loop label).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stored per kind).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `source`.  The lexer never fails: unterminated constructs
/// simply consume the rest of the input (good enough for a lint pass over
/// code that must already compile to reach CI).
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let len = chars.len();

    let count_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count();

    while i < len {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < len {
            if chars[i + 1] == '/' {
                let start = i + 2;
                let mut end = start;
                while end < len && chars[end] != '\n' {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: chars[start..end].iter().collect(),
                    line,
                });
                i = end;
                continue;
            }
            if chars[i + 1] == '*' {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut end = start;
                while end < len && depth > 0 {
                    if chars[end] == '/' && end + 1 < len && chars[end + 1] == '*' {
                        depth += 1;
                        end += 2;
                    } else if chars[end] == '*' && end + 1 < len && chars[end + 1] == '/' {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let inner_end = end.saturating_sub(2).max(start);
                line += count_lines(&chars[i..end]);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: chars[start..inner_end].iter().collect(),
                    line: start_line,
                });
                i = end;
                continue;
            }
        }
        // Raw strings: r"…", r#"…"#, br#"…"# (any number of hashes).
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < len && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < len && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < len && chars[k] == '"' {
                    let start_line = line;
                    let content_start = k + 1;
                    let mut end = content_start;
                    'raw: while end < len {
                        if chars[end] == '"' {
                            let mut h = 0usize;
                            while end + 1 + h < len && h < hashes && chars[end + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                break 'raw;
                            }
                        }
                        end += 1;
                    }
                    line += count_lines(&chars[i..end.min(len)]);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: chars[content_start..end.min(len)].iter().collect(),
                        line: start_line,
                    });
                    i = (end + 1 + hashes).min(len);
                    continue;
                }
            }
        }
        // Byte strings and chars: b"…", b'…'.
        if c == 'b' && i + 1 < len && (chars[i + 1] == '"' || chars[i + 1] == '\'') {
            let (token, next, lines) = lex_quoted(&chars, i + 1, line);
            line += lines;
            tokens.push(token);
            i = next;
            continue;
        }
        // Strings.
        if c == '"' {
            let (token, next, lines) = lex_quoted(&chars, i, line);
            line += lines;
            tokens.push(token);
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // 'x' or '\n' etc. is a char literal; 'ident (no closing quote
            // right after) is a lifetime/label.
            let is_char = if i + 1 < len && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < len && chars[i + 2] == '\''
            };
            if is_char {
                let (token, next, lines) = lex_quoted(&chars, i, line);
                line += lines;
                tokens.push(token);
                i = next;
                continue;
            }
            let start = i + 1;
            let mut end = start;
            while end < len && (chars[end].is_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: chars[start..end].iter().collect(),
                line,
            });
            i = end.max(i + 1);
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut end = i;
            while end < len && (chars[end].is_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..end].iter().collect(),
                line,
            });
            i = end;
            continue;
        }
        // Numbers (loose: handles 1_000, 0xFF, 1.5e-4 without eating `..`).
        if c.is_ascii_digit() {
            let start = i;
            let mut end = i;
            while end < len {
                let d = chars[end];
                let continues = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.'
                        && end + 1 < len
                        && chars[end + 1].is_ascii_digit()
                        && end > start)
                    || ((d == '+' || d == '-')
                        && end > start
                        && matches!(chars[end - 1], 'e' | 'E'));
                if !continues {
                    break;
                }
                end += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..end].iter().collect(),
                line,
            });
            i = end;
            continue;
        }
        // Everything else: one punctuation character.
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    tokens
}

/// Lexes a `"…"` or `'…'` literal starting at `chars[start]` (the opening
/// quote).  Returns the token, the index after the closing quote and the
/// number of newlines consumed.
fn lex_quoted(chars: &[char], start: usize, line: usize) -> (Token, usize, usize) {
    let quote = chars[start];
    let len = chars.len();
    let content_start = start + 1;
    let mut end = content_start;
    while end < len {
        if chars[end] == '\\' {
            end = (end + 2).min(len);
            continue;
        }
        if chars[end] == quote {
            break;
        }
        end += 1;
    }
    let newlines = chars[start..end.min(len)]
        .iter()
        .filter(|&&c| c == '\n')
        .count();
    (
        Token {
            kind: TokenKind::Str,
            text: chars[content_start..end.min(len)].iter().collect(),
            line,
        },
        (end + 1).min(len),
        newlines,
    )
}

/// For each token, whether it lies inside test scope: a `#[test]` or
/// `#[cfg(test)]` item, or an inline `mod tests { … }` / `mod test { … }`.
///
/// The attribute's own tokens, the item header between the attribute and
/// the opening brace, and the braced body all count as test scope.
pub fn test_scope(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut depth = 0usize;
    // Depths at which an active test region began; the region covers all
    // tokens until `depth` drops back to the recorded value.
    let mut test_depths: Vec<usize> = Vec::new();
    // Set after a test attribute until the item's `{` or `;` is reached.
    let mut pending = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.is_comment() {
            in_test[i] = !test_depths.is_empty() || pending;
            i += 1;
            continue;
        }
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Punct, "{") => {
                in_test[i] = !test_depths.is_empty() || pending;
                if pending {
                    test_depths.push(depth);
                    pending = false;
                }
                depth += 1;
            }
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while test_depths.last().is_some_and(|&d| depth <= d) {
                    test_depths.pop();
                }
                // The closing brace of a test region still belongs to it.
                in_test[i] = !test_depths.is_empty() || depth_was_test(&test_depths, depth);
            }
            (TokenKind::Punct, ";") => {
                // A test attribute on a braceless item (e.g. a gated `use`)
                // covers up to the semicolon.
                in_test[i] = !test_depths.is_empty() || pending;
                pending = false;
            }
            (TokenKind::Punct, "#") => {
                // Attribute: # [ … ] — collect its tokens and check for
                // #[test] / #[cfg(test)].
                let start = i;
                if let Some((content_ids, end)) = attribute_span(tokens, i) {
                    let is_test = attribute_is_test(tokens, &content_ids);
                    let scope = !test_depths.is_empty() || pending || is_test;
                    for flag in in_test.iter_mut().take(end + 1).skip(start) {
                        *flag = scope;
                    }
                    if is_test {
                        pending = true;
                    }
                    i = end + 1;
                    continue;
                }
                in_test[i] = !test_depths.is_empty() || pending;
            }
            (TokenKind::Ident, "mod") => {
                in_test[i] = !test_depths.is_empty() || pending;
                // `mod tests {` / `mod test {` opens a test region even
                // without a #[cfg(test)] attribute.
                if let Some(next) = next_code_token(tokens, i + 1) {
                    let name_is_tests = tokens[next].kind == TokenKind::Ident
                        && matches!(tokens[next].text.as_str(), "tests" | "test");
                    if name_is_tests {
                        if let Some(brace) = next_code_token(tokens, next + 1) {
                            if tokens[brace].kind == TokenKind::Punct && tokens[brace].text == "{" {
                                pending = true;
                            }
                        }
                    }
                }
            }
            _ => {
                in_test[i] = !test_depths.is_empty() || pending;
            }
        }
        i += 1;
    }
    in_test
}

/// Whether `depth` equals a recorded test-region start (used to keep the
/// region's own closing brace inside the region).
fn depth_was_test(test_depths: &[usize], depth: usize) -> bool {
    test_depths.last().is_some_and(|&d| d == depth)
}

/// The index of the next non-comment token at or after `from`.
fn next_code_token(tokens: &[Token], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&j| !tokens[j].is_comment())
}

/// If `tokens[at]` is `#` opening an attribute, returns the indices of the
/// attribute's content tokens (between the brackets) and the index of the
/// closing `]`.
fn attribute_span(tokens: &[Token], at: usize) -> Option<(Vec<usize>, usize)> {
    let open = next_code_token(tokens, at + 1)?;
    if tokens[open].kind != TokenKind::Punct || tokens[open].text != "[" {
        return None;
    }
    let mut depth = 1usize;
    let mut content = Vec::new();
    let mut j = open + 1;
    while j < tokens.len() {
        let tok = &tokens[j];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((content, j));
                    }
                }
                _ => {}
            }
        }
        if !tok.is_comment() {
            content.push(j);
        }
        j += 1;
    }
    None
}

/// Whether an attribute's content marks a test item: exactly `test`
/// (`#[test]`), or the sequence `cfg ( test` (`#[cfg(test)]`,
/// `#[cfg(test, …)]`).  `#[cfg(not(test))]` does not match.
fn attribute_is_test(tokens: &[Token], content: &[usize]) -> bool {
    let text = |k: usize| tokens[content[k]].text.as_str();
    if content.len() == 1 && text(0) == "test" {
        return true;
    }
    content.windows(3).any(|w| {
        tokens[w[0]].text == "cfg" && tokens[w[1]].text == "(" && tokens[w[2]].text == "test"
    })
}

/// For each token, whether it belongs to a `use …;` declaration (the
/// `nondet-iteration` rule does not flag imports, only uses).
pub fn use_scope(tokens: &[Token]) -> Vec<bool> {
    let mut in_use = vec![false; tokens.len()];
    let mut active = false;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.is_comment() {
            in_use[i] = active;
            continue;
        }
        if !active && tok.kind == TokenKind::Ident && tok.text == "use" {
            active = true;
        }
        in_use[i] = active;
        if active && tok.kind == TokenKind::Punct && tok.text == ";" {
            active = false;
        }
    }
    in_use
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_comments_and_lifetimes_lex() {
        let src = r##"
// a comment with unwrap() inside
fn f<'a>(x: &'a str) -> char {
    let s = "quoted .unwrap() text";
    let r = r#"raw "string" body"#;
    let c = 'x';
    let esc = '\'';
    /* block /* nested */ comment */
    'outer: loop { break 'outer; }
}
"##;
        let tokens = tokenize(src);
        let strings: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            strings,
            vec!["quoted .unwrap() text", "raw \"string\" body", "x", "\\'"]
        );
        let lifetimes: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer", "outer"]);
        // The unwrap in the comment is a comment token, not an ident.
        assert!(!idents(&tokens).contains(&"unwrap"));
        let comments: Vec<&Token> = tokens.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "let a = \"line\nbreak\";\nlet b = 1;";
        let tokens = tokenize(src);
        let b = tokens
            .iter()
            .find(|t| t.text == "b")
            .expect("token b exists");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn test_scope_covers_cfg_test_and_mod_tests() {
        let src = r#"
fn library() { foo.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { bar.unwrap(); }
}

mod test {
    fn also_test() {}
}

#[test]
fn standalone() { baz.unwrap(); }

#[cfg(not(test))]
fn not_test_gated() { qux.unwrap(); }
"#;
        let tokens = tokenize(src);
        let scope = test_scope(&tokens);
        let flag = |name: &str| {
            let idx = tokens
                .iter()
                .position(|t| t.text == name)
                .unwrap_or_else(|| panic!("token {name} exists"));
            scope[idx]
        };
        assert!(!flag("foo"));
        assert!(flag("bar"));
        assert!(flag("also_test"));
        assert!(flag("baz"));
        assert!(!flag("qux"), "cfg(not(test)) is not test scope");
    }

    #[test]
    fn use_scope_marks_imports_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let tokens = tokenize(src);
        let in_use = use_scope(&tokens);
        let hits: Vec<bool> = tokens
            .iter()
            .zip(&in_use)
            .filter(|(t, _)| t.text == "HashMap")
            .map(|(_, &u)| u)
            .collect();
        assert_eq!(hits, vec![true, false, false]);
    }
}
