//! The lint rules: token-sequence matchers over the [`crate::lexer`] output.
//!
//! Every rule skips test scope (`#[test]`, `#[cfg(test)]`, inline
//! `mod tests`) — the invariants guard library behaviour, and tests are
//! free to unwrap, poison locks and use toy fault points.  Waivers and the
//! baseline are applied by the driver in `lib.rs`, not here: rules report
//! every raw match.

use crate::lexer::{use_scope, Token, TokenKind};

/// A single raw rule match before waiver/baseline filtering.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based line of the match.
    pub line: usize,
    /// Human-readable explanation with the matched construct.
    pub message: String,
}

/// The workspace invariant rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.lock()/.read()/.write()` followed by `.unwrap()/.expect(` — a
    /// poisoned lock aborts every later caller instead of recovering via
    /// `bgc_runtime::relock`.
    PoisonUnsafeLock,
    /// `unwrap`/`expect`/`panic!` in non-test library code.  The only
    /// baselineable rule: pre-existing sites live in `lint-baseline.json`
    /// and may only be removed, never added.
    UncheckedPanic,
    /// `HashMap`/`HashSet` in a designated order-sensitive file
    /// (canonicalization, persistence, report assembly): iteration order
    /// would leak into bytes that must be deterministic.
    NondetIteration,
    /// `Instant::now`/`SystemTime` outside the bench/runtime allowlist:
    /// wall-clock reads in compute paths break run-to-run determinism.
    WallClockInCompute,
    /// `fault::fire("…")` with a point literal missing from
    /// `bgc_runtime::FAULT_POINTS`.
    UnregisteredFaultPoint,
    /// A `// bgc-lint: allow(...)` comment that names an unknown rule or
    /// gives no reason.
    MalformedWaiver,
    /// A well-formed waiver that suppressed nothing.
    UnusedWaiver,
}

impl Rule {
    /// The stable kebab-case name used in waivers, the baseline and output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PoisonUnsafeLock => "poison-unsafe-lock",
            Rule::UncheckedPanic => "unchecked-panic",
            Rule::NondetIteration => "nondet-iteration",
            Rule::WallClockInCompute => "wall-clock-in-compute",
            Rule::UnregisteredFaultPoint => "unregistered-fault-point",
            Rule::MalformedWaiver => "malformed-waiver",
            Rule::UnusedWaiver => "unused-waiver",
        }
    }

    /// Parses a rule name as written in a waiver comment.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Whether pre-existing findings of this rule may live in the
    /// committed baseline.  Only `unchecked-panic` ratchets; every other
    /// rule must be fixed or waived at the site.
    pub fn baselineable(self) -> bool {
        matches!(self, Rule::UncheckedPanic)
    }
}

/// Every rule, in severity/reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::PoisonUnsafeLock,
    Rule::UncheckedPanic,
    Rule::NondetIteration,
    Rule::WallClockInCompute,
    Rule::UnregisteredFaultPoint,
    Rule::MalformedWaiver,
    Rule::UnusedWaiver,
];

/// Workspace-relative path fragments of files whose map iteration order
/// reaches persisted bytes, canonical keys or report rows.  The
/// `nondet-iteration` rule only fires inside these files; everywhere else
/// `HashMap` is fine.  Extend this list when a new file starts writing
/// order-sensitive output (see docs/lint.md).
pub const ORDER_SENSITIVE_FILES: &[&str] = &[
    "crates/condense/src/methods.rs",
    "crates/eval/src/runner.rs",
    "crates/core/src/attack.rs",
    "crates/core/src/selector.rs",
    "crates/core/src/baselines/gta.rs",
    "crates/core/src/baselines/doorping.rs",
    "crates/store/src/admin.rs",
];

/// Workspace-relative path prefixes allowed to read the wall clock:
/// the fault-tolerance runtime (cell deadlines), the bench/CLI crate
/// (timing reports), the artifact store (lock leases, wait deadlines,
/// tmp-file age) and the sampled-training prefetch pipeline (trainer-stall /
/// sampler-idle instrumentation).  Compute crates must stay clock-free.
pub const WALL_CLOCK_ALLOWLIST: &[&str] = &[
    "crates/runtime/",
    "crates/bench/",
    "crates/store/",
    "crates/nn/src/pipeline.rs",
];

/// The file providing poison recovery itself — the one place allowed to
/// call `.lock()`/`.read()`/`.write()` directly.
pub const RELOCK_HOME: &str = "crates/runtime/src/lock.rs";

/// Runs every applicable rule over one file's tokens.
///
/// * `rel_path` — path relative to the workspace root with `/` separators.
/// * `tokens` / `in_test` — lexer output and test-scope flags.
/// * `fault_points` — the registered fault-point names
///   (`bgc_runtime::FAULT_POINTS`).
pub fn run_rules(
    rel_path: &str,
    tokens: &[Token],
    in_test: &[bool],
    fault_points: &[&str],
) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let in_use = use_scope(tokens);
    // Indices of non-comment tokens, so sequence matchers see code only.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text = |k: usize| tokens[code[k]].text.as_str();
    let kind = |k: usize| tokens[code[k]].kind;
    let line = |k: usize| tokens[code[k]].line;

    let order_sensitive = ORDER_SENSITIVE_FILES.iter().any(|f| rel_path.ends_with(f));
    let clock_allowed = WALL_CLOCK_ALLOWLIST
        .iter()
        .any(|prefix| rel_path.starts_with(prefix));
    let is_relock_home = rel_path.ends_with(RELOCK_HOME);

    for k in 0..code.len() {
        if in_test[code[k]] {
            continue;
        }
        let tok_kind = kind(k);
        let tok_text = text(k);

        // poison-unsafe-lock: `.` lock|read|write `(` `)` `.` unwrap|expect `(`
        if !is_relock_home
            && tok_kind == TokenKind::Ident
            && matches!(tok_text, "lock" | "read" | "write")
            && k >= 1
            && text(k - 1) == "."
            && k + 5 < code.len()
            && text(k + 1) == "("
            && text(k + 2) == ")"
            && text(k + 3) == "."
            && matches!(text(k + 4), "unwrap" | "expect")
            && text(k + 5) == "("
        {
            findings.push(RawFinding {
                rule: Rule::PoisonUnsafeLock,
                line: line(k),
                message: format!(
                    ".{}().{}() panics on a poisoned lock; use bgc_runtime::relock{}",
                    tok_text,
                    text(k + 4),
                    match tok_text {
                        "read" => "_read",
                        "write" => "_write",
                        _ => "",
                    }
                ),
            });
        }

        // unchecked-panic: `.unwrap(` / `.expect(` / `panic!(`.
        // The `#[expect(...)]` lint attribute is not a method call: skip
        // when the previous token is `#` or `[`.
        if tok_kind == TokenKind::Ident && matches!(tok_text, "unwrap" | "expect") {
            let after_dot = k >= 1 && text(k - 1) == ".";
            let called = k + 1 < code.len() && text(k + 1) == "(";
            if after_dot && called {
                findings.push(RawFinding {
                    rule: Rule::UncheckedPanic,
                    line: line(k),
                    message: format!(
                        ".{tok_text}() in library code; return a typed BgcError instead"
                    ),
                });
            }
        }
        if tok_kind == TokenKind::Ident
            && tok_text == "panic"
            && k + 1 < code.len()
            && text(k + 1) == "!"
        {
            findings.push(RawFinding {
                rule: Rule::UncheckedPanic,
                line: line(k),
                message: "panic! in library code; return a typed BgcError instead".to_string(),
            });
        }

        // nondet-iteration: HashMap/HashSet in an order-sensitive file,
        // outside `use` declarations (imports alone don't iterate).
        if order_sensitive
            && tok_kind == TokenKind::Ident
            && matches!(tok_text, "HashMap" | "HashSet")
            && !in_use[code[k]]
        {
            findings.push(RawFinding {
                rule: Rule::NondetIteration,
                line: line(k),
                message: format!(
                    "{tok_text} in an order-sensitive file; use BTreeMap/BTreeSet or sorted iteration"
                ),
            });
        }

        // wall-clock-in-compute: Instant::now / SystemTime outside the
        // bench/runtime allowlist.
        if !clock_allowed && tok_kind == TokenKind::Ident && !in_use[code[k]] {
            if tok_text == "Instant"
                && k + 2 < code.len()
                && text(k + 1) == ":"
                && text(k + 2) == ":"
            {
                // Find the ident after the `::` path segment(s).
                if code
                    .get(k + 3)
                    .is_some_and(|&idx| tokens[idx].text == "now")
                {
                    findings.push(RawFinding {
                        rule: Rule::WallClockInCompute,
                        line: line(k),
                        message: "Instant::now() in a compute crate; thread timing through the bench/runtime layer".to_string(),
                    });
                }
            }
            if tok_text == "SystemTime" {
                findings.push(RawFinding {
                    rule: Rule::WallClockInCompute,
                    line: line(k),
                    message: "SystemTime in a compute crate; wall-clock reads break determinism"
                        .to_string(),
                });
            }
        }

        // unregistered-fault-point: fire|fire_io `(` "literal" — the
        // literal must be in the central registry.
        if tok_kind == TokenKind::Ident
            && matches!(tok_text, "fire" | "fire_io")
            && k + 2 < code.len()
            && text(k + 1) == "("
            && kind(k + 2) == TokenKind::Str
        {
            let point = text(k + 2);
            if !fault_points.contains(&point) {
                findings.push(RawFinding {
                    rule: Rule::UnregisteredFaultPoint,
                    line: line(k),
                    message: format!(
                        "fault point \"{point}\" is not in bgc_runtime::FAULT_POINTS; register it there and in the CLI help's fault-injection section"
                    ),
                });
            }
        }
    }
    findings
}

/// A parsed `// bgc-lint: allow(rule) — reason` waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waived rule.
    pub rule: Rule,
    /// 1-based line of the waiver comment; the waiver covers this line and
    /// the next.
    pub line: usize,
    /// The justification text (non-empty by construction).
    pub reason: String,
}

/// Extracts waivers from comment tokens.  Malformed waivers (unknown rule,
/// missing reason, bad syntax after the `bgc-lint:` marker) are reported as
/// findings so they can't silently fail to suppress.
pub fn parse_waivers(tokens: &[Token]) -> (Vec<Waiver>, Vec<RawFinding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if !tok.is_comment() {
            continue;
        }
        let body = tok.text.trim();
        let Some(rest) = body.strip_prefix("bgc-lint:") else {
            continue;
        };
        match parse_waiver_body(rest.trim()) {
            Ok((rule, reason)) => waivers.push(Waiver {
                rule,
                line: tok.line,
                reason,
            }),
            Err(why) => findings.push(RawFinding {
                rule: Rule::MalformedWaiver,
                line: tok.line,
                message: format!("malformed waiver: {why}"),
            }),
        }
    }
    (waivers, findings)
}

/// Parses the part after `bgc-lint:` — `allow(rule) — reason` (the
/// separator may be an em-dash, hyphen or colon, or absent).
fn parse_waiver_body(body: &str) -> Result<(Rule, String), String> {
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err("expected `allow(rule) — reason`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::from_name(rule_name) else {
        return Err(format!("unknown rule `{rule_name}`"));
    };
    if matches!(rule, Rule::MalformedWaiver | Rule::UnusedWaiver) {
        return Err(format!("rule `{rule_name}` cannot be waived"));
    }
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\u{2014}', '-', ':'])
        .trim();
    if reason.is_empty() {
        return Err("missing reason (write `allow(rule) — why it is safe`)".to_string());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{test_scope, tokenize};

    fn lint(path: &str, src: &str) -> Vec<RawFinding> {
        let tokens = tokenize(src);
        let scope = test_scope(&tokens);
        run_rules(path, &tokens, &scope, &["trainer.epoch"])
    }

    #[test]
    fn poison_unsafe_lock_fires_on_lock_unwrap() {
        let src = "fn f() { let g = MEMO.lock().unwrap(); g.insert(1); }";
        let findings = lint("crates/x/src/a.rs", src);
        assert_eq!(
            findings.len(),
            2,
            "lock rule + unchecked-panic: {findings:?}"
        );
        assert_eq!(findings[0].rule, Rule::PoisonUnsafeLock);
        assert_eq!(findings[1].rule, Rule::UncheckedPanic);
    }

    #[test]
    fn relock_does_not_fire_lock_rule() {
        let src = "fn f() { let g = bgc_runtime::relock(&MEMO); g.insert(1); }";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn expect_attribute_is_not_a_panic() {
        let src = "#[expect(dead_code)]\nfn f() {}";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn nondet_iteration_only_in_designated_files() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }";
        assert_eq!(lint("crates/eval/src/runner.rs", src).len(), 2);
        assert!(lint("crates/eval/src/report.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_respects_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert_eq!(lint("crates/core/src/trainer.rs", src).len(), 1);
        assert!(lint("crates/bench/src/cli.rs", src).is_empty());
        assert!(lint("crates/runtime/src/cancel.rs", src).is_empty());
    }

    #[test]
    fn fault_points_check_the_registry() {
        let good = "fn f() { fault::fire(\"trainer.epoch\"); }";
        assert!(lint("crates/x/src/a.rs", good).is_empty());
        let bad = "fn f() { fault::fire(\"bogus.point\"); }";
        let findings = lint("crates/x/src/a.rs", bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::UnregisteredFaultPoint);
    }

    #[test]
    fn test_scope_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); y.lock().unwrap(); }\n}";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn waivers_parse_and_reject_garbage() {
        let src = "\
// bgc-lint: allow(unchecked-panic) — invariant: always Some here
// bgc-lint: allow(no-such-rule) — whatever
// bgc-lint: allow(unchecked-panic)
fn f() {}";
        let tokens = tokenize(src);
        let (waivers, bad) = parse_waivers(&tokens);
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].rule, Rule::UncheckedPanic);
        assert_eq!(waivers[0].reason, "invariant: always Some here");
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|f| f.rule == Rule::MalformedWaiver));
    }
}
