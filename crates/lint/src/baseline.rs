//! The committed lint baseline: a ratchet for `unchecked-panic`.
//!
//! `lint-baseline.json` records, per baselineable rule and file, how many
//! findings existed when the rule was introduced.  The lint pass compares
//! current counts against it:
//!
//! * current > baseline — the excess sites are **new violations**;
//! * current < baseline (or the file no longer exists) — the entry is
//!   **stale** and must be shrunk (`bgc lint --write-baseline`), so the
//!   baseline can only ever ratchet down;
//! * entries for non-baselineable rules are rejected outright — those
//!   rules must be fixed or waived at the site, never baselined.

use std::collections::BTreeMap;
use std::path::Path;

use serde_json::Value;

use crate::rules::Rule;

/// Per-rule, per-file allowed finding counts.  `BTreeMap` keeps the
/// serialized baseline byte-stable across regenerations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `rule name -> (workspace-relative file -> allowed count)`.
    pub entries: BTreeMap<String, BTreeMap<String, usize>>,
}

/// A baseline entry that no longer matches reality and must be removed or
/// shrunk.
#[derive(Clone, Debug)]
pub struct StaleEntry {
    /// Rule name of the stale entry.
    pub rule: String,
    /// Workspace-relative file of the stale entry.
    pub file: String,
    /// Count recorded in the baseline.
    pub allowed: usize,
    /// Count actually found (0 when the file is gone).
    pub found: usize,
    /// Why the entry is stale.
    pub why: String,
}

impl Baseline {
    /// Loads the baseline from `path`.  A missing file is an empty
    /// baseline (first run); a malformed file is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default())
            }
            Err(err) => return Err(format!("cannot read {}: {err}", path.display())),
        };
        Baseline::parse(&text).map_err(|why| format!("malformed {}: {why}", path.display()))
    }

    /// Parses the baseline JSON document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = serde_json::from_str(text).map_err(|err| err.to_string())?;
        let Value::Object(rules) = value else {
            return Err("top level must be an object of rule names".to_string());
        };
        let mut entries = BTreeMap::new();
        for (rule_name, files) in rules {
            let Value::Object(files) = files else {
                return Err(format!("entry for `{rule_name}` must be an object"));
            };
            let mut counts = BTreeMap::new();
            for (file, count) in files {
                let Some(count) = count.as_u64() else {
                    return Err(format!(
                        "count for `{rule_name}` / `{file}` must be a number"
                    ));
                };
                counts.insert(file, count as usize);
            }
            entries.insert(rule_name, counts);
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from current per-(rule, file) counts, keeping
    /// only baselineable rules (`--write-baseline`).
    pub fn from_counts(counts: &BTreeMap<(Rule, String), usize>) -> Baseline {
        let mut entries: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for ((rule, file), &count) in counts {
            if rule.baselineable() && count > 0 {
                entries
                    .entry(rule.name().to_string())
                    .or_default()
                    .insert(file.clone(), count);
            }
        }
        Baseline { entries }
    }

    /// The allowed count for `(rule, file)`; 0 when absent.
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.entries
            .get(rule.name())
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Detects stale entries against current counts: a recorded count
    /// higher than reality, or an entry for a rule that is not
    /// baselineable at all.
    pub fn stale_entries(&self, counts: &BTreeMap<(Rule, String), usize>) -> Vec<StaleEntry> {
        let mut stale = Vec::new();
        for (rule_name, files) in &self.entries {
            let rule = Rule::from_name(rule_name);
            for (file, &allowed) in files {
                let Some(rule) = rule else {
                    stale.push(StaleEntry {
                        rule: rule_name.clone(),
                        file: file.clone(),
                        allowed,
                        found: 0,
                        why: format!("unknown rule `{rule_name}`"),
                    });
                    continue;
                };
                if !rule.baselineable() {
                    stale.push(StaleEntry {
                        rule: rule_name.clone(),
                        file: file.clone(),
                        allowed,
                        found: 0,
                        why: format!(
                            "rule `{rule_name}` is not baselineable; fix or waive the sites"
                        ),
                    });
                    continue;
                }
                let found = counts.get(&(rule, file.clone())).copied().unwrap_or(0);
                if found < allowed {
                    stale.push(StaleEntry {
                        rule: rule_name.clone(),
                        file: file.clone(),
                        allowed,
                        found,
                        why: if found == 0 {
                            "no findings remain (or the file is gone); remove the entry".to_string()
                        } else {
                            format!("only {found} of {allowed} findings remain; shrink the entry")
                        },
                    });
                }
            }
        }
        stale
    }

    /// Serializes the baseline as pretty JSON (stable key order via
    /// `BTreeMap`), with a trailing newline for clean diffs.
    pub fn to_json(&self) -> String {
        let rules: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|(rule, files)| {
                let files: Vec<(String, Value)> = files
                    .iter()
                    .map(|(file, &count)| (file.clone(), Value::Number(count as f64)))
                    .collect();
                (rule.clone(), Value::Object(files))
            })
            .collect();
        let mut text = Value::Object(rules).to_json_string_pretty();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(Rule, &str, usize)]) -> BTreeMap<(Rule, String), usize> {
        entries
            .iter()
            .map(|&(rule, file, n)| ((rule, file.to_string()), n))
            .collect()
    }

    #[test]
    fn round_trips_through_json() {
        let baseline = Baseline::from_counts(&counts(&[
            (Rule::UncheckedPanic, "crates/a/src/lib.rs", 2),
            (Rule::UncheckedPanic, "crates/b/src/lib.rs", 1),
            // Not baselineable: dropped by from_counts.
            (Rule::PoisonUnsafeLock, "crates/a/src/lib.rs", 1),
        ]));
        assert_eq!(baseline.entries.len(), 1);
        let parsed = Baseline::parse(&baseline.to_json()).expect("round trip");
        assert_eq!(parsed, baseline);
        assert_eq!(
            parsed.allowed(Rule::UncheckedPanic, "crates/a/src/lib.rs"),
            2
        );
        assert_eq!(
            parsed.allowed(Rule::UncheckedPanic, "crates/c/src/lib.rs"),
            0
        );
    }

    #[test]
    fn stale_when_counts_shrink_or_rule_not_baselineable() {
        let baseline = Baseline::parse(
            r#"{
                "unchecked-panic": { "crates/a/src/lib.rs": 3, "crates/gone.rs": 1 },
                "poison-unsafe-lock": { "crates/a/src/lib.rs": 1 },
                "made-up-rule": { "crates/a/src/lib.rs": 1 }
            }"#,
        )
        .expect("parses");
        let stale =
            baseline.stale_entries(&counts(&[(Rule::UncheckedPanic, "crates/a/src/lib.rs", 1)]));
        assert_eq!(stale.len(), 4, "{stale:?}");
        assert!(stale
            .iter()
            .any(|s| s.file == "crates/gone.rs" && s.found == 0));
        assert!(stale
            .iter()
            .any(|s| s.rule == "unchecked-panic" && s.allowed == 3 && s.found == 1));
        assert!(stale.iter().any(|s| s.rule == "poison-unsafe-lock"));
        assert!(stale.iter().any(|s| s.rule == "made-up-rule"));
    }

    #[test]
    fn current_above_baseline_is_not_stale() {
        let baseline = Baseline::parse(r#"{ "unchecked-panic": { "crates/a/src/lib.rs": 1 } }"#)
            .expect("parses");
        let stale =
            baseline.stale_entries(&counts(&[(Rule::UncheckedPanic, "crates/a/src/lib.rs", 5)]));
        assert!(stale.is_empty());
    }

    #[test]
    fn missing_file_loads_empty() {
        let baseline = Baseline::load(Path::new("/nonexistent/lint-baseline.json"))
            .expect("missing file is empty baseline");
        assert!(baseline.entries.is_empty());
    }
}
