//! Poison-recovering lock helpers shared by every crate of the workspace.
//!
//! The workspace's locks protect *caches of deterministic values* (memoized
//! stages, result maps, registries) and are never held across the
//! computation that fills them — a panicking thread can poison the mutex,
//! but it cannot leave the protected map logically mid-update.  Recovering
//! the guard with [`std::sync::PoisonError::into_inner`] is therefore sound
//! and keeps one panicked experiment cell from wedging every other thread
//! behind a `PoisonError`.
//!
//! Use these helpers instead of `.lock().unwrap()` / `.read().unwrap()` /
//! `.write().unwrap()`; the `poison-unsafe-lock` rule of `bgc-lint` rejects
//! the raw spellings in non-test code.
//!
//! **When recovery would be unsound:** a lock whose critical section
//! performs a multi-step update that must be observed atomically (write A,
//! then write B, invariant links them) must *not* blanket-recover, because
//! a panic between the steps leaves the invariant broken for the recovering
//! reader.  No workspace lock currently does this; if one ever must, keep
//! the explicit `.lock().unwrap()` and waive the lint with a reason.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the guard if a panicking thread poisoned it.
pub fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering the guard if it was poisoned.
pub fn relock_read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering the guard if it was poisoned.
pub fn relock_write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn relock_recovers_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(7));
        let poisoner = Arc::clone(&mutex);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = poisoner.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the lock");
        }));
        assert!(mutex.is_poisoned());
        assert_eq!(*relock(&mutex), 7);
        *relock(&mutex) = 8;
        assert_eq!(*relock(&mutex), 8);
    }

    #[test]
    fn relock_read_write_recover_a_poisoned_rwlock() {
        let lock = Arc::new(RwLock::new(vec![1, 2]));
        let poisoner = Arc::clone(&lock);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = poisoner.write().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the lock");
        }));
        assert!(lock.is_poisoned());
        assert_eq!(relock_read(&lock).len(), 2);
        relock_write(&lock).push(3);
        assert_eq!(relock_read(&lock).len(), 3);
    }
}
