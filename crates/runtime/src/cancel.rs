//! Cooperative cancellation with deadlines.
//!
//! A [`CancelToken`] carries an optional deadline and a manual cancel flag.
//! The owner of a unit of work (the experiment runner, later a daemon
//! request handler) creates a token and [`CancelToken::enter`]s it for the
//! duration of the work on the executing thread; the long loops beneath —
//! trainer epochs, condensation outer epochs — call [`checkpoint`] once per
//! iteration.  When the token is cancelled or past its deadline, the
//! checkpoint unwinds with a [`CancelUnwind`] payload, which the scope owner
//! catches at the work boundary (`std::panic::catch_unwind`) and converts
//! into a typed timed-out outcome.
//!
//! Unwinding (rather than threading `Result` through every training and
//! condensation signature) keeps cancellation invisible to code that does
//! not opt in: outside a scope, [`checkpoint`] is a thread-local read.

use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation state of one unit of work.
///
/// Cloning shares the state: a clone handed to another thread can
/// [`CancelToken::cancel`] the work while the executing thread polls
/// [`CancelToken::is_cancelled`] through its [`checkpoint`]s.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// The timeout this token was created with (reporting only; the live
    /// deadline is `deadline`).
    timeout: Option<Duration>,
    /// Parent token: cancelling the parent cancels every descendant, so a
    /// request-level deadline composes with per-cell timeouts (see
    /// [`CancelToken::child_with_timeout`]).
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            || self.parent.as_deref().is_some_and(Inner::is_cancelled)
    }

    fn timeout(&self) -> Option<Duration> {
        self.timeout
            .or_else(|| self.parent.as_deref().and_then(Inner::timeout))
    }
}

/// The unwind payload raised by [`checkpoint`] when the current scope's
/// token is cancelled or past its deadline.  Catch handlers downcast to this
/// type to distinguish cooperative cancellation from a genuine panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelUnwind;

impl CancelToken {
    /// A token that never cancels on its own (cancel it manually).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token whose [`checkpoint`]s start unwinding once `timeout` has
    /// elapsed from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                timeout: Some(timeout),
                parent: None,
            }),
        }
    }

    /// A child token with its own deadline that is *also* cancelled whenever
    /// this (or any ancestor) token cancels or times out.  The experiment
    /// runner uses this to compose a request-level deadline (a daemon
    /// request, a whole-invocation `--deadline`) with the per-cell timeout:
    /// the cell's checkpoints observe whichever fires first.
    pub fn child_with_timeout(&self, timeout: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                timeout: Some(timeout),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Requests cancellation; the executing thread observes it at its next
    /// [`checkpoint`].  Cancelling a token also cancels every child derived
    /// from it via [`CancelToken::child_with_timeout`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled, its deadline has passed, or any
    /// ancestor token is cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// The timeout this token (or, when it has none, its nearest ancestor)
    /// was created with — `None` for manual-cancel tokens.  Reporting only:
    /// the value does not change as the deadline approaches.
    pub fn timeout(&self) -> Option<Duration> {
        self.inner.timeout()
    }

    /// Makes this token the current one on the calling thread until the
    /// returned guard drops.  Scopes nest; the innermost token wins.
    #[must_use = "the token is only current while the returned scope guard lives"]
    pub fn enter(&self) -> CancelScope {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        CancelScope { _private: () }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of an entered token (see [`CancelToken::enter`]).
#[derive(Debug)]
pub struct CancelScope {
    _private: (),
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Cancellation checkpoint for long-running loops.
///
/// No-op when no token is entered on this thread or the current token is
/// live; unwinds with a [`CancelUnwind`] payload otherwise.  Place one per
/// epoch / outer iteration — the granularity bounds how late a deadline is
/// observed.
pub fn checkpoint() {
    let cancelled =
        CURRENT.with(|stack| stack.borrow().last().is_some_and(CancelToken::is_cancelled));
    if cancelled {
        panic_any(CancelUnwind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn checkpoint_is_a_noop_without_a_scope() {
        checkpoint();
    }

    #[test]
    fn live_token_does_not_unwind() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        let _scope = token.enter();
        checkpoint();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancelled_token_unwinds_with_the_typed_payload() {
        let token = CancelToken::new();
        token.cancel();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _scope = token.enter();
            checkpoint();
        }));
        let payload = result.expect_err("checkpoint must unwind");
        assert!(payload.downcast_ref::<CancelUnwind>().is_some());
        // The scope guard popped during unwinding: later checkpoints on this
        // thread are no-ops again.
        checkpoint();
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let token = CancelToken::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(token.is_cancelled());
    }

    #[test]
    fn child_tokens_inherit_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel reaches the child");
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn child_deadline_fires_independently_of_the_parent() {
        let parent = CancelToken::with_timeout(Duration::from_secs(3600));
        let child = parent.child_with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(child.is_cancelled(), "child deadline elapsed");
        assert!(!parent.is_cancelled(), "parent is unaffected by the child");
    }

    #[test]
    fn timeout_reports_the_creation_value() {
        assert_eq!(CancelToken::new().timeout(), None);
        let token = CancelToken::with_timeout(Duration::from_millis(250));
        assert_eq!(token.timeout(), Some(Duration::from_millis(250)));
        let child = token.child_with_timeout(Duration::from_millis(50));
        assert_eq!(child.timeout(), Some(Duration::from_millis(50)));
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        outer.cancel();
        let _outer_scope = outer.enter();
        {
            let _inner_scope = inner.enter();
            // The inner token is live, so the checkpoint passes even though
            // the outer one is cancelled.
            checkpoint();
        }
        let result = catch_unwind(AssertUnwindSafe(checkpoint));
        assert!(result.is_err(), "outer scope is current again");
    }
}
