//! # bgc-runtime
//!
//! Fault-tolerance substrate shared by every execution layer of the BGC
//! reproduction: cooperative cancellation with deadlines ([`cancel`]),
//! deterministic fault injection ([`fault`]) and poison-recovering lock
//! helpers ([`lock`]).
//!
//! Both facilities are *scoped*: the experiment runner enters a scope around
//! one cell's execution on the worker thread, and the long loops beneath it
//! (trainer epochs, condensation outer epochs) call the free functions
//! [`checkpoint`] and [`fault::fire`] without threading any handle through
//! their signatures.  Outside a scope both are no-ops, so library users that
//! never opt in pay one thread-local read per epoch and nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod fault;
pub mod lock;

pub use cancel::{checkpoint, CancelScope, CancelToken, CancelUnwind};
pub use fault::{FaultAction, FaultPlan, FaultScope, FaultSpec, FAULT_POINTS};
pub use lock::{relock, relock_read, relock_write};
