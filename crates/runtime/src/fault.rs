//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each naming a *fault point*
//! (a stable string like `trainer.epoch` or `runner.persist`), an optional
//! context filter (a substring of the executing cell's canonical key), the
//! 1-based hit index it fires on, and an action: panic, I/O error, or delay.
//! The experiment runner enters a [`FaultScope`] around each cell it
//! executes; instrumented code calls [`fire`] / [`fire_io`] at its fault
//! points.  Outside a scope both are no-ops, so production runs pay one
//! thread-local read per fault point.
//!
//! Every spec fires exactly once — on its `nth` matching hit — which makes
//! the injected failure *transient by construction*: a retry or a re-run of
//! the same process observes the fault already spent and succeeds.  Plans
//! are configured programmatically (tests) or parsed from the `BGC_FAULTS`
//! environment variable (CLI, CI):
//!
//! ```text
//! BGC_FAULTS="point[@ctx][#n]=action[;point=action...]"
//!     point   fault-point name (trainer.epoch, condense.outer,
//!             stage.clean, stage.attack, runner.persist, runner.load)
//!     @ctx    only fire when the scope context contains this substring
//!             (cell canonical keys make good filters)
//!     #n      fire on the nth matching hit (default 1)
//!     action  panic | io | delay:<millis>
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Central registry of every named fault point in the workspace.
///
/// Instrumenting a new site means adding its name here *first*: the
/// `unregistered-fault-point` rule of `bgc-lint` rejects any
/// `fault::fire("…")` / `fault::fire_io("…")` literal that is not listed,
/// a meta-test asserts the registry exactly matches the instrumented call
/// sites, and the CLI help (`docs/cli-help.txt`) documents each point.
pub const FAULT_POINTS: &[&str] = &[
    // One trainer epoch (bgc-nn trainer, full-batch and sampled loops).
    "trainer.epoch",
    // One condensation outer epoch (gradient matching and GC-SNTK).
    "condense.outer",
    // The memoized clean-reference condensation stage (eval runner).
    "stage.clean",
    // The memoized attack stage (eval runner).
    "stage.attack",
    // Cell persist: between the temp-file write and the atomic rename.
    "runner.persist",
    // Cell load: before reading a persisted cell file.
    "runner.load",
    // Daemon accept loop: after a client connection is accepted.
    "daemon.accept",
    // Daemon request dispatch: before a request is executed.
    "daemon.request",
    // Daemon lifecycle persistence: pidfile/socket bookkeeping writes.
    "daemon.persist",
    // Artifact-store read: before a stored artifact is read and verified.
    "store.read",
    // Artifact-store write: between the temp-file write and the atomic
    // rename that publishes an artifact.
    "store.write",
    // Artifact-store single-flight: before a lock-file acquisition attempt.
    "store.lock",
    // Prefetch producer: before each sampled batch is produced (bgc-nn
    // sampled-training pipeline; fires on the sampler thread).
    "sampler.produce",
];

/// Whether `point` is a registered fault point (see [`FAULT_POINTS`]).
pub fn is_registered(point: &str) -> bool {
    FAULT_POINTS.contains(&point)
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an "injected panic" message (exercises unwind isolation).
    Panic,
    /// Report an I/O error from [`fire_io`] points; panics at plain [`fire`]
    /// points (which cannot express errors).
    IoError,
    /// Sleep for the given duration (exercises deadlines and kill windows).
    Delay(Duration),
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::IoError => write!(f, "io"),
            FaultAction::Delay(d) => write!(f, "delay:{}", d.as_millis()),
        }
    }
}

/// One armed fault of a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultSpec {
    /// Fault-point name this spec arms.
    pub point: String,
    /// Only fire inside scopes whose context contains this substring.
    pub context: Option<String>,
    /// 1-based index of the matching hit the spec fires on.
    pub nth: usize,
    /// Action taken when the spec fires.
    pub action: FaultAction,
    hits: AtomicUsize,
}

impl FaultSpec {
    /// A spec firing `action` on the first hit of `point` in any context.
    pub fn new(point: impl Into<String>, action: FaultAction) -> Self {
        Self {
            point: point.into(),
            context: None,
            nth: 1,
            action,
            hits: AtomicUsize::new(0),
        }
    }

    /// Restricts the spec to scopes whose context contains `needle`.
    pub fn in_context(mut self, needle: impl Into<String>) -> Self {
        self.context = Some(needle.into());
        self
    }

    /// Fires on the `nth` (1-based) matching hit instead of the first.
    pub fn on_hit(mut self, nth: usize) -> Self {
        self.nth = nth.max(1);
        self
    }

    /// Counts a matching hit; returns the action exactly when this hit is
    /// the spec's `nth`.
    fn arm(&self, point: &str, context: &str) -> Option<FaultAction> {
        if self.point != point {
            return None;
        }
        if let Some(needle) = &self.context {
            if !context.contains(needle.as_str()) {
                return None;
            }
        }
        let hit = self.hits.fetch_add(1, Ordering::AcqRel) + 1;
        (hit == self.nth).then_some(self.action)
    }
}

/// A set of armed faults, entered per unit of work via [`FaultPlan::enter`].
///
/// Clones share hit counters, so a plan entered for many cells of a grid
/// still fires each spec exactly once across the whole run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<Arc<FaultSpec>>,
}

impl FaultPlan {
    /// An empty plan (fires nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a spec to the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(Arc::new(spec));
        self
    }

    /// Whether the plan arms any fault at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Parses the `BGC_FAULTS` spec syntax (see the module docs).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in text.split(';').filter(|p| !p.trim().is_empty()) {
            let (head, action) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec '{}' is missing '=action'", part))?;
            let action = match action.trim() {
                "panic" => FaultAction::Panic,
                "io" => FaultAction::IoError,
                delay if delay.starts_with("delay:") => {
                    let millis: u64 = delay["delay:".len()..]
                        .parse()
                        .map_err(|_| format!("malformed delay in fault spec '{}'", part))?;
                    FaultAction::Delay(Duration::from_millis(millis))
                }
                other => {
                    return Err(format!(
                        "unknown fault action '{}' (expected panic, io or delay:<ms>)",
                        other
                    ))
                }
            };
            let (head, nth) = match head.rsplit_once('#') {
                Some((rest, nth)) => (
                    rest,
                    nth.parse::<usize>()
                        .map_err(|_| format!("malformed hit index in fault spec '{}'", part))?,
                ),
                None => (head, 1),
            };
            let (point, context) = match head.split_once('@') {
                Some((point, ctx)) => (point, Some(ctx.to_string())),
                None => (head, None),
            };
            if point.trim().is_empty() {
                return Err(format!("fault spec '{}' is missing a point name", part));
            }
            let mut spec = FaultSpec::new(point.trim(), action).on_hit(nth);
            spec.context = context;
            plan = plan.with(spec);
        }
        Ok(plan)
    }

    /// The plan armed by the `BGC_FAULTS` environment variable; `None` when
    /// unset or empty, `Err` when set but malformed.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("BGC_FAULTS") {
            Ok(text) if !text.trim().is_empty() => Self::parse(&text).map(Some),
            _ => Ok(None),
        }
    }

    /// Makes this plan current on the calling thread (with the given scope
    /// context, e.g. the executing cell's canonical key) until the returned
    /// guard drops.
    #[must_use = "the plan is only armed while the returned scope guard lives"]
    pub fn enter(&self, context: &str) -> FaultScope {
        SCOPE.with(|stack| stack.borrow_mut().push((self.clone(), context.to_string())));
        FaultScope { _private: () }
    }

    fn fire_action(&self, point: &str, context: &str) -> Option<FaultAction> {
        self.specs.iter().find_map(|spec| spec.arm(point, context))
    }
}

thread_local! {
    static SCOPE: RefCell<Vec<(FaultPlan, String)>> = const { RefCell::new(Vec::new()) };
}

/// Owned snapshot of the calling thread's innermost fault scope.
///
/// Scopes are thread-local, so worker threads spawned inside a scope (the
/// sampled-training prefetch producer, for instance) start unarmed.  A
/// snapshot captures the innermost plan and context so the worker can
/// [`ScopeSnapshot::enter`] the same scope; hit counters stay shared, so a
/// spec still fires exactly once across all threads.
#[derive(Clone, Debug)]
pub struct ScopeSnapshot {
    plan: FaultPlan,
    context: String,
}

impl ScopeSnapshot {
    /// Captures the calling thread's innermost scope; `None` outside one.
    pub fn capture() -> Option<Self> {
        SCOPE.with(|stack| {
            stack.borrow().last().map(|(plan, context)| Self {
                plan: plan.clone(),
                context: context.clone(),
            })
        })
    }

    /// Re-arms the captured scope on the calling thread until the returned
    /// guard drops.
    #[must_use = "the plan is only armed while the returned scope guard lives"]
    pub fn enter(&self) -> FaultScope {
        self.plan.enter(&self.context)
    }
}

/// RAII guard of an entered plan (see [`FaultPlan::enter`]).
#[derive(Debug)]
pub struct FaultScope {
    _private: (),
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        SCOPE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

fn armed(point: &str) -> Option<FaultAction> {
    SCOPE.with(|stack| {
        let stack = stack.borrow();
        let (plan, context) = stack.last()?;
        plan.fire_action(point, context)
    })
}

/// Fault point for sites that cannot report errors (loops, stage bodies).
///
/// No-op outside a scope.  A `panic` (or `io`) fault panics with a message
/// naming the point; a `delay` fault sleeps.
pub fn fire(point: &str) {
    match armed(point) {
        None => {}
        Some(FaultAction::Delay(duration)) => std::thread::sleep(duration),
        Some(FaultAction::Panic) | Some(FaultAction::IoError) => {
            // bgc-lint: allow(unchecked-panic) — injecting a panic is this fault point's contract
            panic!("injected panic at fault point '{}'", point)
        }
    }
}

/// Fault point for I/O sites.  Like [`fire`], but an `io` fault returns an
/// injected [`std::io::Error`] instead of panicking.
pub fn fire_io(point: &str) -> std::io::Result<()> {
    match armed(point) {
        None => Ok(()),
        Some(FaultAction::Delay(duration)) => {
            std::thread::sleep(duration);
            Ok(())
        }
        // bgc-lint: allow(unchecked-panic) — injecting a panic is this fault point's contract
        Some(FaultAction::Panic) => panic!("injected panic at fault point '{}'", point),
        Some(FaultAction::IoError) => Err(std::io::Error::other(format!(
            "injected i/o error at fault point '{}'",
            point
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fire_is_a_noop_without_a_scope() {
        fire("trainer.epoch");
        assert!(fire_io("runner.persist").is_ok());
    }

    #[test]
    fn parse_roundtrips_every_action() {
        let plan = FaultPlan::parse("trainer.epoch=panic;runner.persist@cora#3=io;x=delay:250")
            .expect("plan parses");
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.specs[0].point, "trainer.epoch");
        assert_eq!(plan.specs[0].action, FaultAction::Panic);
        assert_eq!(plan.specs[1].context.as_deref(), Some("cora"));
        assert_eq!(plan.specs[1].nth, 3);
        assert_eq!(plan.specs[1].action, FaultAction::IoError);
        assert_eq!(
            plan.specs[2].action,
            FaultAction::Delay(Duration::from_millis(250))
        );
        assert!(FaultPlan::parse("no-action").is_err());
        assert!(FaultPlan::parse("p=explode").is_err());
        assert!(FaultPlan::parse("p#x=panic").is_err());
        assert!(FaultPlan::parse("=panic").is_err());
    }

    #[test]
    fn specs_fire_once_on_their_nth_matching_hit() {
        let plan = FaultPlan::new().with(FaultSpec::new("p", FaultAction::IoError).on_hit(2));
        let _scope = plan.enter("ctx");
        assert!(fire_io("p").is_ok(), "first hit passes");
        assert!(fire_io("p").is_err(), "second hit fires");
        assert!(fire_io("p").is_ok(), "spent spec never fires again");
        assert!(fire_io("other").is_ok(), "other points are unaffected");
    }

    #[test]
    fn context_filters_gate_firing() {
        let plan =
            FaultPlan::new().with(FaultSpec::new("p", FaultAction::IoError).in_context("citeseer"));
        {
            let _scope = plan.enter("v2|quick|cora|GCond");
            assert!(fire_io("p").is_ok(), "non-matching context never counts");
        }
        let _scope = plan.enter("v2|quick|citeseer|GCond");
        assert!(fire_io("p").is_err());
    }

    #[test]
    fn hit_counters_are_shared_across_scopes() {
        // One plan entered per cell (as the runner does) still fires exactly
        // once across the whole grid.
        let plan = FaultPlan::new().with(FaultSpec::new("p", FaultAction::IoError));
        {
            let _scope = plan.enter("cell-a");
            assert!(fire_io("p").is_err());
        }
        let _scope = plan.enter("cell-b");
        assert!(fire_io("p").is_ok());
    }

    #[test]
    fn snapshot_rearms_scope_on_another_thread_with_shared_counters() {
        let plan = FaultPlan::new().with(FaultSpec::new("sampler.produce", FaultAction::IoError));
        let _scope = plan.enter("v2|quick|cora|GCond");
        let snapshot = ScopeSnapshot::capture().expect("inside a scope");
        let fired_on_worker = std::thread::spawn(move || {
            let _scope = snapshot.enter();
            fire_io("sampler.produce").is_err()
        })
        .join()
        .expect("worker does not panic");
        assert!(fired_on_worker, "snapshot arms the plan on the worker");
        // Hit counters are shared: the spec is spent for this thread too.
        assert!(fire_io("sampler.produce").is_ok());
        assert!(ScopeSnapshot::capture().is_some());
    }

    #[test]
    fn panic_faults_name_the_point() {
        let plan = FaultPlan::new().with(FaultSpec::new("trainer.epoch", FaultAction::Panic));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _scope = plan.enter("ctx");
            fire("trainer.epoch");
        }));
        let payload = result.expect_err("must panic");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("trainer.epoch"), "{}", message);
    }
}
